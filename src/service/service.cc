#include "aa/service/service.hh"

#include <algorithm>
#include <unordered_map>

#include "aa/analog/refine.hh"
#include "aa/common/logging.hh"
#include "aa/compiler/program.hh"

namespace aa::service {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

SolveService::SolveService(analog::DiePool &pool, ServiceOptions opts)
    : pool_(pool), opts_(opts),
      workers_(std::min(opts.threads ? opts.threads
                                     : defaultThreadCount(),
                        pool.size())),
      die_lifetime_requests_(pool.size(), 0),
      latency_(std::max<std::size_t>(opts.latency_window, 1))
{
    fatalIf(opts_.queue_capacity == 0,
            "SolveService: queue capacity must be positive");
    counters_.dies.resize(pool_.size());
    paused_ = opts_.start_paused;
    scheduler_ = std::thread([this] { schedulerLoop(); });
}

SolveService::~SolveService()
{
    stop();
}

std::future<SolveResponse>
SolveService::rejectNow(RequestStatus status, std::string reason)
{
    SolveResponse r;
    r.status = status;
    r.reason = std::move(reason);
    std::promise<SolveResponse> p;
    auto fut = p.get_future();
    p.set_value(std::move(r));
    return fut;
}

std::future<SolveResponse>
SolveService::submit(SolveRequest req)
{
    if (!req.a || req.a->rows() == 0 ||
        req.a->rows() != req.a->cols() ||
        req.a->rows() != req.b.size() ||
        (!req.u0.empty() && req.u0.size() != req.b.size())) {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++counters_.rejected_invalid;
        return rejectNow(RequestStatus::RejectedInvalid,
                         "malformed request (null/non-square matrix "
                         "or dimension mismatch)");
    }

    Pending p;
    p.pattern = compiler::sparsityHash(*req.a);
    p.n = req.a->rows();
    p.submitted_at = Clock::now();
    if (req.deadline_seconds > 0.0) {
        p.has_deadline = true;
        p.deadline_at =
            p.submitted_at +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(req.deadline_seconds));
    }
    p.req = std::move(req);
    auto fut = p.promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!accepting_) {
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            ++counters_.rejected_shutdown;
            return rejectNow(RequestStatus::RejectedShutdown,
                             "service is shutting down");
        }
        if (queue_.size() >= opts_.queue_capacity) {
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            ++counters_.rejected_full;
            return rejectNow(
                RequestStatus::RejectedQueueFull,
                detail::concat("queue full (capacity ",
                               opts_.queue_capacity, ")"));
        }
        p.seq = next_seq_++;
        queue_.push_back(std::move(p));
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++counters_.submitted;
        counters_.queue_depth = queue_.size();
        counters_.queue_peak =
            std::max(counters_.queue_peak, queue_.size());
    }
    cv_.notify_all();
    return fut;
}

void
SolveService::schedulerLoop()
{
    for (;;) {
        std::vector<Pending> round;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [&] {
                return stopping_ || (!paused_ && !queue_.empty());
            });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            std::size_t take = opts_.max_batch
                                   ? std::min(opts_.max_batch,
                                              queue_.size())
                                   : queue_.size();
            round.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                round.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            round_in_flight_ = true;
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            counters_.queue_depth = queue_.size();
            ++counters_.batches;
        }

        dispatchRound(routeRound(std::move(round)));

        {
            std::lock_guard<std::mutex> lock(mu_);
            round_in_flight_ = false;
        }
        cv_idle_.notify_all();
    }
}

std::vector<std::vector<SolveService::Pending>>
SolveService::routeRound(std::vector<Pending> round)
{
    // Deterministic round order: priority first, submission order
    // within a priority. Everything downstream (grouping, routing,
    // exec_order stamps) derives from this ordering and from cache
    // residency — never from timing.
    std::stable_sort(round.begin(), round.end(),
                     [](const Pending &x, const Pending &y) {
                         if (x.req.priority != y.req.priority)
                             return x.req.priority > y.req.priority;
                         return x.seq < y.seq;
                     });

    std::vector<std::vector<Pending>> by_die(pool_.size());
    std::vector<std::size_t> round_load(pool_.size(), 0);

    auto assign = [&](Pending &&p, std::size_t die) {
        p.die = die;
        p.affine_hit = pool_.dieHasPattern(die, p.pattern, p.n);
        ++round_load[die];
        ++die_lifetime_requests_[die];
        by_die[die].push_back(std::move(p));
    };

    if (!opts_.cache_affinity) {
        // Affinity-blind baseline: spray requests die by die.
        for (Pending &p : round)
            assign(std::move(p),
                   static_cast<std::size_t>(rr_cursor_++ %
                                            pool_.size()));
        return by_die;
    }

    // Group compatible requests (same sparsity pattern and size) so
    // one die runs the whole group back to back on one live
    // configuration.
    struct Group {
        std::uint64_t pattern;
        std::size_t n;
        std::vector<Pending> members;
    };
    std::vector<Group> groups;
    std::unordered_map<std::uint64_t, std::size_t> group_of;
    for (Pending &p : round) {
        std::uint64_t key = p.pattern * 1099511628211ULL ^ p.n;
        auto it = group_of.find(key);
        if (it == group_of.end()) {
            group_of.emplace(key, groups.size());
            groups.push_back({p.pattern, p.n, {}});
            groups.back().members.push_back(std::move(p));
        } else {
            groups[it->second].members.push_back(std::move(p));
        }
    }

    for (Group &g : groups) {
        // Prefer a die that already holds the compiled structure;
        // among those (or among all dies on a cold pattern), pick the
        // least-loaded, breaking ties toward the lowest index.
        std::vector<std::size_t> candidates =
            pool_.diesWithPattern(g.pattern, g.n);
        bool cold = candidates.empty();
        if (cold) {
            candidates.resize(pool_.size());
            for (std::size_t k = 0; k < pool_.size(); ++k)
                candidates[k] = k;
        }
        std::size_t best = candidates.front();
        auto load = [&](std::size_t k) {
            // Cold patterns also weigh lifetime traffic so repeated
            // cold misses spread across the pool instead of piling
            // onto die 0.
            return round_load[k] +
                   (cold ? die_lifetime_requests_[k] : 0);
        };
        for (std::size_t k : candidates)
            if (load(k) < load(best))
                best = k;
        for (Pending &p : g.members)
            assign(std::move(p), best);
    }
    return by_die;
}

void
SolveService::dispatchRound(std::vector<std::vector<Pending>> by_die)
{
    // Stamp global execution slots in die-index order — deterministic
    // at any thread count — and collect the active dies.
    std::vector<std::size_t> active;
    for (std::size_t k = 0; k < by_die.size(); ++k) {
        if (by_die[k].empty())
            continue;
        active.push_back(k);
        for (Pending &p : by_die[k])
            p.exec_order = exec_counter_++;
    }
    if (active.empty())
        return;

    // One task per active die; a die's requests run sequentially in
    // stamped order, so per-die state (solver, usage slot) is never
    // shared across threads.
    workers_.parallelForWorkers(
        active.size(), [&](std::size_t, std::size_t i) {
            for (Pending &p : by_die[active[i]])
                executeRequest(p);
        });
}

void
SolveService::executeRequest(Pending &p)
{
    auto t_start = Clock::now();
    SolveResponse r;
    r.die = p.die;
    r.affine_hit = p.affine_hit;
    r.exec_order = p.exec_order;
    r.queue_seconds =
        std::chrono::duration<double>(t_start - p.submitted_at)
            .count();

    std::size_t solves = 0;
    if (p.has_deadline && Clock::now() >= p.deadline_at) {
        r.status = RequestStatus::DeadlineExpired;
        r.reason = "deadline expired while queued";
    } else {
        analog::AnalogLinearSolver &die = pool_.die(p.die);
        try {
            if (p.req.tolerance > 0.0) {
                analog::RefineOptions ro;
                ro.tolerance = p.req.tolerance;
                ro.max_passes = 1 + p.req.max_refine_passes;
                ro.record_history = false;
                if (p.has_deadline) {
                    auto deadline = p.deadline_at;
                    ro.keep_going = [deadline] {
                        return Clock::now() < deadline;
                    };
                }
                analog::RefineOutcome out =
                    analog::refineSolve(die, *p.req.a, p.req.b, ro);
                double bnorm = la::norm2(p.req.b);
                r.u = std::move(out.u);
                r.converged = out.converged;
                r.residual = out.final_residual /
                             (bnorm > 0.0 ? bnorm : 1.0);
                r.refine_passes = out.passes;
                r.analog_seconds = out.analog_seconds;
                r.phases = out.phases;
                solves = out.passes;
                if (!out.converged && p.has_deadline &&
                    Clock::now() >= p.deadline_at) {
                    r.status = RequestStatus::DeadlineExpired;
                    r.reason = "deadline expired mid-refinement";
                }
            } else {
                analog::AnalogSolveOutcome out =
                    die.solve(*p.req.a, p.req.b, p.req.u0);
                r.u = std::move(out.u);
                r.converged = out.converged;
                r.attempts = out.attempts;
                r.refine_passes = 1;
                r.analog_seconds = out.analog_seconds;
                r.phases = out.phases;
                solves = 1;
            }
            pool_.recordUsage(p.die, solves, r.analog_seconds,
                              r.phases);
        } catch (const std::exception &e) {
            r.status = RequestStatus::Failed;
            r.reason = e.what();
        } catch (...) {
            r.status = RequestStatus::Failed;
            r.reason = "unknown exception";
        }
    }

    r.service_seconds = secondsSince(p.submitted_at);
    double busy = secondsSince(t_start);

    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++counters_.completed;
        switch (r.status) {
        case RequestStatus::Ok:
            ++counters_.ok;
            break;
        case RequestStatus::DeadlineExpired:
            ++counters_.deadline_expired;
            break;
        case RequestStatus::Failed:
            ++counters_.failed;
            break;
        default:
            break;
        }
        if (r.refine_passes > 1)
            counters_.retries += r.refine_passes - 1;
        if (r.affine_hit)
            ++counters_.affinity_hits;
        else
            ++counters_.affinity_misses;
        counters_.cache_hits += r.phases.cache_hits;
        counters_.cache_misses += r.phases.cache_misses;
        counters_.config_bytes += r.phases.config_bytes;
        DieServiceStats &d = counters_.dies[p.die];
        ++d.requests;
        d.solves += solves;
        d.affine_routed += r.affine_hit ? 1 : 0;
        d.busy_seconds += busy;
        d.cache_hits += r.phases.cache_hits;
        d.cache_misses += r.phases.cache_misses;
        latency_.add(r.service_seconds);
        latency_running_.add(r.service_seconds);
    }

    p.promise.set_value(std::move(r));
}

void
SolveService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [&] {
        return (queue_.empty() || paused_) && !round_in_flight_;
    });
}

void
SolveService::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_ && !accepting_) {
            // Already stopped (idempotent).
            if (!scheduler_.joinable())
                return;
        }
        accepting_ = false;
        stopping_ = true;
        paused_ = false; // stop always drains what was admitted
    }
    cv_.notify_all();
    if (scheduler_.joinable())
        scheduler_.join();
    workers_.shutdownWorkers();
}

void
SolveService::pause()
{
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
}

void
SolveService::resume()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        paused_ = false;
    }
    cv_.notify_all();
}

ServiceMetrics
SolveService::metrics() const
{
    std::lock_guard<std::mutex> mlock(metrics_mu_);
    ServiceMetrics m = counters_;
    m.latency_p50 = latency_.quantile(0.50);
    m.latency_p95 = latency_.quantile(0.95);
    m.latency_p99 = latency_.quantile(0.99);
    m.latency_max = latency_running_.max();
    m.latency_mean = latency_running_.mean();
    return m;
}

} // namespace aa::service
