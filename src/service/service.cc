#include "aa/service/service.hh"

#include <algorithm>
#include <unordered_map>

#include "aa/analog/refine.hh"
#include "aa/common/logging.hh"
#include "aa/compiler/program.hh"
#include "aa/fault/fault.hh"
#include "aa/la/operator.hh"
#include "aa/solver/iterative.hh"
#include "aa/solver/krylov.hh"

namespace aa::service {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

std::future<SolveResponse>
rejectedFuture(RequestStatus status, std::string reason)
{
    SolveResponse r;
    r.status = status;
    r.reason = std::move(reason);
    std::promise<SolveResponse> p;
    auto fut = p.get_future();
    p.set_value(std::move(r));
    return fut;
}

SolveService::SolveService(analog::DiePool &pool, ServiceOptions opts)
    : pool_(pool), opts_(opts),
      workers_(std::min(opts.threads ? opts.threads
                                     : defaultThreadCount(),
                        pool.size())),
      die_lifetime_requests_(pool.size(), 0),
      latency_(std::max<std::size_t>(opts.latency_window, 1))
{
    fatalIf(opts_.queue_capacity == 0,
            "SolveService: queue capacity must be positive");
    fatalIf(opts_.pipeline && opts_.pipeline_depth == 0,
            "SolveService: pipeline depth must be positive");
    counters_.dies.resize(pool_.size());
    paused_ = opts_.start_paused;
    started_at_ = Clock::now();
    if (opts_.pipeline) {
        residency_.resize(pool_.size());
        lanes_.reserve(pool_.size());
        for (std::size_t k = 0; k < pool_.size(); ++k) {
            residency_[k].capacity = std::max<std::size_t>(
                1, pool_.die(k).options().program_cache_capacity);
            lanes_.push_back(std::make_unique<DieLane>());
        }
        for (std::size_t k = 0; k < pool_.size(); ++k) {
            lanes_[k]->stager =
                std::thread([this, k] { stagerLoop(k); });
            lanes_[k]->executor =
                std::thread([this, k] { executorLoop(k); });
        }
        fb_.worker = std::thread([this] { fallbackLoop(); });
    }
    scheduler_ = std::thread([this] { schedulerLoop(); });
}

SolveService::~SolveService()
{
    stop();
}

std::future<SolveResponse>
SolveService::rejectNow(RequestStatus status, std::string reason)
{
    return rejectedFuture(status, std::move(reason));
}

std::future<SolveResponse>
SolveService::submit(SolveRequest req)
{
    if (!req.a || req.a->rows() == 0 ||
        req.a->rows() != req.a->cols() ||
        req.a->rows() != req.b.size() ||
        (!req.u0.empty() && req.u0.size() != req.b.size())) {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++counters_.rejected_invalid;
        return rejectNow(RequestStatus::RejectedInvalid,
                         "malformed request (null/non-square matrix "
                         "or dimension mismatch)");
    }

    Pending p;
    p.pattern = compiler::sparsityHash(*req.a);
    p.n = req.a->rows();
    // Lane selection reads the matrix's symmetry; stamp it once at
    // admission (A is immutable behind the shared_ptr).
    p.symmetric = req.a->isSymmetric();
    p.submitted_at = Clock::now();
    if (req.deadline_seconds > 0.0) {
        p.has_deadline = true;
        p.deadline_at =
            p.submitted_at +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(req.deadline_seconds));
    }
    p.req = std::move(req);
    auto fut = p.promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!accepting_) {
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            ++counters_.rejected_shutdown;
            return rejectNow(RequestStatus::RejectedShutdown,
                             "service is shutting down");
        }
        if (queue_.size() >= opts_.queue_capacity) {
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            ++counters_.rejected_full;
            return rejectNow(
                RequestStatus::RejectedQueueFull,
                detail::concat("queue full (capacity ",
                               opts_.queue_capacity, ")"));
        }
        p.seq = next_seq_++;
        queue_.push_back(std::move(p));
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++counters_.submitted;
        counters_.queue_depth = queue_.size();
        counters_.queue_peak =
            std::max(counters_.queue_peak, queue_.size());
    }
    cv_.notify_all();
    return fut;
}

void
SolveService::schedulerLoop()
{
    for (;;) {
        std::vector<Pending> round;
        std::size_t round_no = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [&] {
                return stopping_ || (!paused_ && !queue_.empty());
            });
            if (queue_.empty()) {
                if (!stopping_)
                    continue;
                // Pipelined requests may still requeue themselves
                // (reroute chains): hold on until every in-flight
                // request either finished or came back for routing.
                if (pipeline_inflight_ == 0)
                    return;
                cv_.wait(lock, [&] {
                    return !queue_.empty() ||
                           pipeline_inflight_ == 0;
                });
                if (queue_.empty())
                    return;
                continue;
            }
            std::size_t take = opts_.max_batch
                                   ? std::min(opts_.max_batch,
                                              queue_.size())
                                   : queue_.size();
            round.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                round.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            round_in_flight_ = true;
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            counters_.queue_depth = queue_.size();
            round_no = ++counters_.batches;
        }

        dispatchRound(routeRound(std::move(round)));
        // Health evolves with rounds, never wall clock: quarantine
        // cooldowns tick here, where no worker is touching the pool.
        pool_.tickRound();
        // Round-boundary hook: the placement layer rebalances here,
        // on the scheduler thread, while no worker drives a die.
        if (opts_.on_round_end)
            opts_.on_round_end(round_no);

        {
            std::lock_guard<std::mutex> lock(mu_);
            round_in_flight_ = false;
        }
        cv_idle_.notify_all();
    }
}

SolveService::RoutePlan
SolveService::routeRound(std::vector<Pending> round)
{
    // Deterministic round order: priority first, then the fair rank
    // stamped at admission (0 for every direct caller, so the legacy
    // order — submission order within a priority — is unchanged),
    // then submission order. Everything downstream (grouping,
    // routing, exec_order stamps) derives from this ordering, from
    // cache residency, and from pool health — never from timing.
    std::stable_sort(round.begin(), round.end(),
                     [](const Pending &x, const Pending &y) {
                         if (x.req.priority != y.req.priority)
                             return x.req.priority > y.req.priority;
                         if (x.req.fair_rank != y.req.fair_rank)
                             return x.req.fair_rank < y.req.fair_rank;
                         return x.seq < y.seq;
                     });

    RoutePlan plan;
    plan.by_die.resize(pool_.size());

    // Only healthy/probation dies take work this round; with none
    // left the whole round goes to the digital-fallback lane — the
    // service keeps answering with every die down.
    std::vector<std::size_t> avail = pool_.availableDies();
    if (avail.empty()) {
        plan.fallback = std::move(round);
        return plan;
    }

    std::vector<std::size_t> round_load(pool_.size(), 0);

    // Pipelined routing queries the scheduler's residency model —
    // snapshotted here so every group in the round sees the same
    // pre-round state (the barriered round granularity) — because
    // the live program caches are mutating under the executors while
    // this runs. Assignments touch the live model for the next
    // round. Barriered routing keeps the live pool queries (and
    // their bit-identical legacy behavior).
    std::vector<ResidencyModel> res_snap;
    if (opts_.pipeline)
        res_snap = residency_;
    auto resident_on = [&](std::size_t k, std::uint64_t pattern,
                           std::size_t n) {
        return opts_.pipeline
                   ? res_snap[k].contains(pattern, n)
                   : pool_.dieHasPattern(k, pattern, n);
    };

    auto assign = [&](Pending &&p, std::size_t die) {
        p.die = die;
        p.affine_hit = resident_on(die, p.pattern, p.n);
        if (opts_.pipeline)
            residency_[die].touch(p.pattern, p.n);
        ++round_load[die];
        ++die_lifetime_requests_[die];
        plan.by_die[die].push_back(std::move(p));
    };

    // Retry-chain requests carry per-request die exclusions, so they
    // route individually after the fresh traffic. Digital-only
    // requests never touch a die: straight to the fallback lane, in
    // round order.
    std::vector<Pending> fresh;
    std::vector<Pending> retries;
    for (Pending &p : round) {
        if (p.req.lane == LanePreference::DigitalOnly) {
            plan.fallback.push_back(std::move(p));
            continue;
        }
        (p.tried.empty() ? fresh : retries).push_back(std::move(p));
    }

    if (!opts_.cache_affinity) {
        // Affinity-blind baseline: spray requests die by die.
        for (Pending &p : fresh)
            assign(std::move(p),
                   avail[static_cast<std::size_t>(rr_cursor_++ %
                                                  avail.size())]);
    } else {
        // Group compatible requests (same sparsity pattern and size)
        // so one die runs the whole group back to back on one live
        // configuration.
        struct Group {
            std::uint64_t pattern;
            std::size_t n;
            std::vector<Pending> members;
        };
        std::vector<Group> groups;
        std::unordered_map<std::uint64_t, std::size_t> group_of;
        for (Pending &p : fresh) {
            std::uint64_t key = p.pattern * 1099511628211ULL ^ p.n;
            auto it = group_of.find(key);
            if (it == group_of.end()) {
                group_of.emplace(key, groups.size());
                groups.push_back({p.pattern, p.n, {}});
                groups.back().members.push_back(std::move(p));
            } else {
                groups[it->second].members.push_back(std::move(p));
            }
        }

        for (Group &g : groups) {
            // Prefer a routable die that already holds the compiled
            // structure; among those (or among all routable dies on a
            // cold pattern), pick the least-loaded, breaking ties
            // toward the lowest index.
            std::vector<std::size_t> candidates;
            for (std::size_t k : avail)
                if (resident_on(k, g.pattern, g.n))
                    candidates.push_back(k);
            bool cold = candidates.empty();
            if (cold)
                candidates = avail;
            std::size_t best = candidates.front();
            auto load = [&](std::size_t k) {
                // Cold patterns also weigh lifetime traffic so
                // repeated cold misses spread across the pool instead
                // of piling onto die 0.
                return round_load[k] +
                       (cold ? die_lifetime_requests_[k] : 0);
            };
            for (std::size_t k : candidates)
                if (load(k) < load(best))
                    best = k;
            for (Pending &p : g.members)
                assign(std::move(p), best);
        }
    }

    for (Pending &p : retries) {
        // Least-loaded routable die this request has not burned yet,
        // preferring residency; none left means the chain is out of
        // hardware to try.
        std::vector<std::size_t> eligible;
        for (std::size_t k : avail)
            if (std::find(p.tried.begin(), p.tried.end(), k) ==
                p.tried.end())
                eligible.push_back(k);
        if (eligible.empty()) {
            plan.fallback.push_back(std::move(p));
            continue;
        }
        std::vector<std::size_t> resident;
        for (std::size_t k : eligible)
            if (resident_on(k, p.pattern, p.n))
                resident.push_back(k);
        const std::vector<std::size_t> &pick =
            resident.empty() ? eligible : resident;
        std::size_t best = pick.front();
        for (std::size_t k : pick)
            if (round_load[k] < round_load[best])
                best = k;
        assign(std::move(p), best);
    }
    return plan;
}

void
SolveService::dispatchRound(RoutePlan plan)
{
    // Stamp global execution slots in die-index order — deterministic
    // at any thread count — and collect the active dies. The fallback
    // lane executes after the die-routed traffic, in round order.
    std::vector<std::vector<Pending>> &by_die = plan.by_die;
    std::vector<std::size_t> active;
    for (std::size_t k = 0; k < by_die.size(); ++k) {
        if (by_die[k].empty())
            continue;
        active.push_back(k);
        for (Pending &p : by_die[k])
            p.exec_order = exec_counter_++;
    }
    for (Pending &p : plan.fallback)
        p.exec_order = exec_counter_++;

    if (opts_.pipeline) {
        // Count every request as in flight before any lane can touch
        // it, so drain()/stop() never observe a false idle between
        // the pushes below.
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (std::size_t k : active)
                for (Pending &p : by_die[k]) {
                    p.in_pipeline = true;
                    ++pipeline_inflight_;
                }
            for (Pending &p : plan.fallback) {
                p.in_pipeline = true;
                ++pipeline_inflight_;
            }
        }
        for (std::size_t k : active) {
            DieLane &lane = *lanes_[k];
            std::unique_lock<std::mutex> lock(lane.mu);
            // Bounded FIFO: the scheduler, not the lane, absorbs
            // backpressure when a die falls behind.
            lane.cv.wait(lock, [&] {
                return lane.rounds.size() < opts_.pipeline_depth;
            });
            lane.rounds.push_back(std::move(by_die[k]));
            lane.cv.notify_all();
        }
        if (!plan.fallback.empty()) {
            {
                std::lock_guard<std::mutex> lock(fb_.mu);
                for (Pending &p : plan.fallback)
                    fb_.q.push_back(std::move(p));
            }
            fb_.cv.notify_all();
        }
        return;
    }

    // Barriered dispatch: one task per active die — a die's requests
    // run sequentially in stamped order, so per-die state (solver,
    // usage slot, health slot) is never shared across threads — plus
    // one task for the fallback lane, so a slow digital-CG chain no
    // longer serializes after the dies at thread counts above one.
    // At AASIM_THREADS=1 tasks run inline in index order (dies, then
    // fallback), exactly the legacy sequential trace.
    std::size_t tasks =
        active.size() + (plan.fallback.empty() ? 0 : 1);
    if (tasks) {
        workers_.parallelForWorkers(
            tasks, [&](std::size_t, std::size_t i) {
                if (i < active.size()) {
                    executeDie(by_die[active[i]]);
                    return;
                }
                // Fallback requests never touch a die: digital CG,
                // sequentially and deterministically in round order.
                for (Pending &p : plan.fallback)
                    executeRequest(p);
            });
    }
}

void
SolveService::executeDie(std::vector<Pending> &list)
{
    if (!opts_.batch_multi_rhs) {
        for (Pending &p : list)
            executeRequest(p);
        return;
    }
    // Segment the stamped order into maximal runs of batchable
    // requests sharing one matrix object. Contiguity is free here:
    // affinity routing groups same-pattern traffic back to back, and
    // honoring the stamped order keeps execution deterministic.
    std::size_t i = 0;
    while (i < list.size()) {
        std::size_t j = i + 1;
        if (batchable(list[i]))
            while (j < list.size() && batchable(list[j]) &&
                   list[j].req.a.get() == list[i].req.a.get())
                ++j;
        if (j - i >= 2)
            executeBatch(list, i, j);
        else
            executeRequest(list[i]);
        i = j;
    }
}

bool
SolveService::batchable(const Pending &p) const
{
    // tolerance>0 runs the refinement loop (its own batching lives in
    // refineSolveBatch); deadlines need per-request expiry checks
    // between solves. Both run solo.
    return p.req.tolerance == 0.0 && !p.has_deadline;
}

void
SolveService::executeBatch(std::vector<Pending> &list,
                           std::size_t begin, std::size_t end)
{
    auto t_start = Clock::now();
    const std::size_t count = end - begin;
    const la::DenseMatrix &a = *list[begin].req.a;

    std::vector<la::Vector> bs;
    std::vector<la::Vector> u0s;
    bs.reserve(count);
    u0s.reserve(count);
    for (std::size_t k = begin; k < end; ++k) {
        bs.push_back(list[k].req.b);
        u0s.push_back(list[k].req.u0); // empty = no warm start
    }

    analog::AnalogLinearSolver &die = pool_.die(list[begin].die);
    std::vector<analog::AnalogSolveOutcome> outs;
    try {
        outs = die.solveBatch(a, bs, u0s);
    } catch (...) {
        // An exception aborts the whole call before any member has an
        // answer (a range error on one member, or the die dying).
        // Re-run every member solo: executeRequest owns the recovery,
        // reroute, and fallback machinery per request. Costs repeated
        // analog work only on fault paths.
        for (std::size_t k = begin; k < end; ++k)
            executeRequest(list[k]);
        return;
    }

    // One batch on the die's books: K solves, one configure.
    double batch_analog = 0.0;
    analog::SolvePhaseReport batch_phases;
    for (const analog::AnalogSolveOutcome &out : outs) {
        batch_analog += out.analog_seconds;
        batch_phases.add(out.phases);
    }
    pool_.recordBatchUsage(list[begin].die, count, batch_analog,
                           batch_phases);

    std::size_t delivered = 0;
    for (std::size_t k = begin; k < end; ++k) {
        Pending &p = list[k];
        analog::AnalogSolveOutcome &out = outs[k - begin];
        SolveResponse r;
        r.die = p.die;
        r.affine_hit = p.affine_hit;
        r.exec_order = p.exec_order;
        r.reroutes = p.reroutes;
        r.failure_chain = p.chain;
        r.attempts = p.prior_attempts + out.attempts;
        r.analog_seconds = p.prior_analog_seconds + out.analog_seconds;
        r.phases = p.prior_phases;
        r.phases.add(out.phases);
        r.queue_seconds =
            std::chrono::duration<double>(t_start - p.submitted_at)
                .count();

        if (opts_.residual_verify) {
            // Same digital check as solveVerified, same norm.
            const double b_norm = la::norm2(p.req.b);
            la::Vector res = a.apply(out.u);
            for (std::size_t i = 0; i < res.size(); ++i)
                res[i] = p.req.b[i] - res[i];
            r.residual = b_norm > 0.0 ? la::norm2(res) / b_norm
                                      : la::norm2(res);
            if (r.residual > opts_.verify_rel_residual) {
                // Fold the rejected work into the request and send it
                // through the solo verified path on this die — that
                // path owns local recovery, then the reroute chain.
                // The batch check is a filter, not a health event.
                p.prior_attempts = r.attempts;
                p.prior_analog_seconds = r.analog_seconds;
                p.prior_phases = r.phases;
                executeRequest(p);
                continue;
            }
            r.verified = true;
            pool_.recordSuccess(p.die);
        }
        r.u = std::move(out.u);
        r.converged = out.converged;
        r.refine_passes = 1;
        r.lane = SolveLane::Analog;
        ++delivered;
        // busy_seconds per member measures from the batch's start —
        // members overlap, so per-die busy time counts shared wall
        // clock once per member, like sequential execution would.
        finishRequest(p, r, /*solves=*/1, t_start);
    }

    std::lock_guard<std::mutex> mlock(metrics_mu_);
    ++counters_.rhs_batches;
    counters_.rhs_batched_requests += delivered;
    counters_.dies[list[begin].die].rhs_batched += delivered;
}

void
SolveService::stagerLoop(std::size_t k)
{
    DieLane &lane = *lanes_[k];
    // The structure predicted to be live on the die when the next
    // staged unit executes: the previous prepared unit's, unknown
    // (null) after a batch. A wrong prediction costs only the
    // overlap — solveOne corrects it against the live shadow.
    const compiler::CompiledStructure *predicted_live = nullptr;
    for (;;) {
        std::vector<Pending> list;
        {
            std::unique_lock<std::mutex> lock(lane.mu);
            lane.cv.wait(lock, [&] {
                return lane.rounds_closed || !lane.rounds.empty();
            });
            if (lane.rounds.empty()) {
                lane.units_closed = true;
                lane.cv.notify_all();
                return;
            }
            list = std::move(lane.rounds.front());
            lane.rounds.pop_front();
            lane.cv.notify_all(); // unblock the scheduler's push
        }
        // Segment the stamped order exactly like the barriered
        // executeDie: maximal runs of batchable same-matrix requests
        // become one batch unit, everything else a solo unit.
        std::size_t i = 0;
        while (i < list.size()) {
            std::size_t j = i + 1;
            if (opts_.batch_multi_rhs && batchable(list[i]))
                while (j < list.size() && batchable(list[j]) &&
                       list[j].req.a.get() == list[i].req.a.get())
                    ++j;
            ExecUnit u;
            u.is_batch = j - i >= 2;
            u.items.reserve(j - i);
            for (std::size_t t = i; t < j; ++t)
                u.items.push_back(std::move(list[t]));
            i = j;
            if (u.is_batch) {
                predicted_live = nullptr;
            } else {
                // Prepare the host-side half off-die while the
                // executor integrates earlier units. Only the
                // tolerance==0 no-deadline path consumes a prep;
                // anything going wrong here simply loses the overlap
                // (executeRequest runs the canonical path).
                Pending &p = u.items.front();
                if (p.req.tolerance == 0.0 && !p.has_deadline &&
                    !p.force_fallback) {
                    try {
                        u.prep = pool_.die(k).prepareSolve(
                            *p.req.a, p.req.b, p.req.u0,
                            predicted_live);
                        u.has_prep = u.prep.valid;
                    } catch (...) {
                        u.has_prep = false;
                    }
                    predicted_live =
                        u.has_prep ? u.prep.structure.get() : nullptr;
                }
            }
            std::unique_lock<std::mutex> lock(lane.mu);
            lane.cv.wait(lock, [&] {
                return lane.units.size() < opts_.pipeline_depth;
            });
            lane.units.push_back(std::move(u));
            lane.cv.notify_all();
        }
    }
}

void
SolveService::executorLoop(std::size_t k)
{
    DieLane &lane = *lanes_[k];
    for (;;) {
        ExecUnit u;
        {
            std::unique_lock<std::mutex> lock(lane.mu);
            lane.cv.wait(lock, [&] {
                return lane.units_closed || !lane.units.empty();
            });
            if (lane.units.empty())
                return;
            u = std::move(lane.units.front());
            lane.units.pop_front();
            lane.cv.notify_all(); // unblock the stager's push
        }
        if (u.is_batch)
            executeBatch(u.items, 0, u.items.size());
        else
            executeRequest(u.items.front(),
                           u.has_prep ? &u.prep : nullptr);
    }
}

void
SolveService::fallbackLoop()
{
    for (;;) {
        Pending p;
        {
            std::unique_lock<std::mutex> lock(fb_.mu);
            fb_.cv.wait(lock,
                        [&] { return fb_.closed || !fb_.q.empty(); });
            if (fb_.q.empty())
                return;
            p = std::move(fb_.q.front());
            fb_.q.pop_front();
        }
        executeRequest(p);
    }
}

void
SolveService::executeRequest(Pending &p, analog::PreparedSolve *prep)
{
    auto t_start = Clock::now();
    SolveResponse r;
    r.die = p.die;
    r.affine_hit = p.affine_hit;
    r.exec_order = p.exec_order;
    r.reroutes = p.reroutes;
    r.failure_chain = p.chain;
    // Work already spent on dies this chain burned through.
    r.attempts = p.prior_attempts;
    r.analog_seconds = p.prior_analog_seconds;
    r.phases = p.prior_phases;
    r.queue_seconds =
        std::chrono::duration<double>(t_start - p.submitted_at)
            .count();

    if (p.has_deadline && Clock::now() >= p.deadline_at) {
        r.status = RequestStatus::DeadlineExpired;
        r.reason = p.chain.empty()
                       ? "deadline expired while queued"
                       : "deadline expired during retry chain";
        finishRequest(p, r, 0, t_start);
        return;
    }

    if (p.die == SIZE_MAX || p.force_fallback) {
        // The router found no die this request may still run on (or
        // its retry chain exhausted analog attempts and the fallback
        // lane inherited it).
        finishWithFallback(p, r);
        finishRequest(p, r, 0, t_start);
        return;
    }

    if (wantsPrecond(p)) {
        // Analog-preconditioned Krylov rung: entered directly by
        // explicit preference or nonsymmetric Auto traffic, or via
        // the ladder's stage flag after the verified chain exhausted.
        executePrecond(p, r, t_start);
        return;
    }

    std::size_t solves = 0;
    analog::AnalogLinearSolver &die = pool_.die(p.die);
    try {
        if (p.req.tolerance > 0.0) {
            analog::RefineOptions ro;
            ro.tolerance = p.req.tolerance;
            ro.max_passes = 1 + p.req.max_refine_passes;
            ro.record_history = false;
            if (p.has_deadline) {
                auto deadline = p.deadline_at;
                ro.keep_going = [deadline] {
                    return Clock::now() < deadline;
                };
            }
            analog::RefineOutcome out =
                analog::refineSolve(die, *p.req.a, p.req.b, ro);
            double bnorm = la::norm2(p.req.b);
            r.u = std::move(out.u);
            r.converged = out.converged;
            r.residual =
                out.final_residual / (bnorm > 0.0 ? bnorm : 1.0);
            r.refine_passes = out.passes;
            r.analog_seconds += out.analog_seconds;
            r.phases.add(out.phases);
            solves = out.passes;
            pool_.recordUsage(p.die, solves, out.analog_seconds,
                              out.phases);
            if (!out.converged && p.has_deadline &&
                Clock::now() >= p.deadline_at) {
                r.status = RequestStatus::DeadlineExpired;
                r.reason = "deadline expired mid-refinement";
            } else if (opts_.residual_verify &&
                       r.residual > opts_.verify_rel_residual) {
                // Refinement measures residuals by construction; a
                // result this far off means the die is lying, not
                // that the tolerance was ambitious.
                handleAnalogFailure(
                    p, r,
                    "residual check failed (rel residual " +
                        std::to_string(r.residual) + ")",
                    /*dead=*/false, t_start);
                return;
            } else {
                r.verified = r.residual <= opts_.verify_rel_residual;
                pool_.recordSuccess(p.die);
            }
            r.lane = SolveLane::AnalogRefined;
        } else if (opts_.residual_verify) {
            analog::VerifyOptions vo;
            vo.rel_residual = opts_.verify_rel_residual;
            vo.max_recoveries = opts_.max_die_recoveries;
            analog::VerifiedSolveOutcome v = die.solveVerified(
                *p.req.a, p.req.b, p.req.u0, vo, prep);
            solves = 1 + v.recoveries;
            r.residual = v.rel_residual;
            r.attempts += v.outcome.attempts;
            r.analog_seconds += v.outcome.analog_seconds;
            r.phases.add(v.outcome.phases);
            pool_.recordUsage(p.die, solves,
                              v.outcome.analog_seconds,
                              v.outcome.phases);
            if (!v.ok) {
                handleAnalogFailure(p, r, v.reason, /*dead=*/false,
                                    t_start);
                return;
            }
            if (v.recoveries > 0) {
                std::lock_guard<std::mutex> mlock(metrics_mu_);
                counters_.recoveries += v.recoveries;
            }
            r.u = std::move(v.outcome.u);
            r.converged = v.outcome.converged;
            r.refine_passes = 1;
            r.verified = true;
            r.lane = SolveLane::Analog;
            pool_.recordSuccess(p.die);
        } else {
            // Legacy raw path: whatever the ADCs said is the answer.
            analog::AnalogSolveOutcome out =
                prep ? die.solvePrepared(*p.req.a, p.req.b, p.req.u0,
                                         std::move(*prep))
                     : die.solve(*p.req.a, p.req.b, p.req.u0);
            r.u = std::move(out.u);
            r.converged = out.converged;
            r.attempts += out.attempts;
            r.refine_passes = 1;
            r.lane = SolveLane::Analog;
            r.analog_seconds += out.analog_seconds;
            r.phases.add(out.phases);
            solves = 1;
            pool_.recordUsage(p.die, solves, out.analog_seconds,
                              out.phases);
        }
    } catch (const fault::DieDeadError &e) {
        handleAnalogFailure(p, r, e.what(), /*dead=*/true, t_start);
        return;
    } catch (const analog::SolveRangeError &e) {
        handleAnalogFailure(p, r, e.what(), /*dead=*/false, t_start);
        return;
    } catch (const std::exception &e) {
        r.status = RequestStatus::Failed;
        r.reason = e.what();
    } catch (...) {
        r.status = RequestStatus::Failed;
        r.reason = "unknown exception";
    }

    finishRequest(p, r, solves, t_start);
}

bool
SolveService::wantsPrecond(const Pending &p) const
{
    switch (p.req.lane) {
    case LanePreference::PrecondKrylov:
        // An explicit lane preference overrides the service option.
        return true;
    case LanePreference::AnalogOnly:
    case LanePreference::DigitalOnly:
        return false;
    case LanePreference::Auto:
        break;
    }
    if (!opts_.precond_lane)
        return false;
    // Either the ladder inserted the stage after the verified chain
    // exhausted, or the system is nonsymmetric — gradient-flow
    // convergence needs SPD, so Auto skips the doomed pure-analog
    // rung and opens at this one.
    return p.precond_stage || !p.symmetric;
}

void
SolveService::executePrecond(Pending &p, SolveResponse &r,
                             Clock::time_point t_start)
{
    p.precond_tried = true;
    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++counters_.precond_attempts;
    }
    analog::AnalogLinearSolver &die = pool_.die(p.die);
    analog::PrecondSolveOptions po;
    po.tolerance = p.req.tolerance > 0.0 ? p.req.tolerance
                                         : opts_.precond_tolerance;
    po.max_iters = opts_.precond_max_iters;
    po.restart = opts_.precond_restart;
    if (p.has_deadline) {
        auto deadline = p.deadline_at;
        po.keep_going = [deadline] {
            return Clock::now() < deadline;
        };
    }
    try {
        analog::PreconditionedSolveOutcome out =
            die.solvePreconditioned(*p.req.a, p.req.b, po);
        r.attempts += out.precond_applies;
        r.analog_seconds += out.analog_seconds;
        r.phases.add(out.phases);
        r.krylov_iterations = out.iterations;
        r.precond_applies = out.precond_applies;
        pool_.recordUsage(p.die, out.precond_applies,
                          out.analog_seconds, out.phases);
        {
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            counters_.krylov_iterations += out.iterations;
            counters_.precond_applies += out.precond_applies;
        }
        // The lane claims the answer only when the outer iteration
        // converged (its exit residual is a digital measurement) AND
        // the analog side actually contributed — all applies falling
        // back means the loop ran effectively unpreconditioned on a
        // die that cannot range this system.
        bool analog_helped =
            out.precond_applies == 0 ||
            out.precond_fallbacks < out.precond_applies;
        if (out.converged && analog_helped) {
            r.u = std::move(out.u);
            r.converged = true;
            r.residual = out.final_residual;
            r.refine_passes = 1;
            r.verified = true;
            r.lane = SolveLane::AnalogPrecond;
            pool_.recordSuccess(p.die);
            finishRequest(p, r, out.precond_applies, t_start);
            return;
        }
        {
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            ++counters_.precond_failures;
        }
        if (!out.converged && p.has_deadline &&
            Clock::now() >= p.deadline_at) {
            r.status = RequestStatus::DeadlineExpired;
            r.reason = "deadline expired mid-krylov";
            finishRequest(p, r, out.precond_applies, t_start);
            return;
        }
        std::string why = "precond krylov: ";
        why += analog_helped ? out.stop_detail
                             : "every analog apply fell back";
        handleAnalogFailure(p, r, why, /*dead=*/false, t_start);
    } catch (const fault::DieDeadError &e) {
        {
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            ++counters_.precond_failures;
        }
        handleAnalogFailure(
            p, r, detail::concat("precond krylov: ", e.what()),
            /*dead=*/true, t_start);
    } catch (const std::exception &e) {
        // Still one resolved lane entry: every precond_attempts tick
        // ends in exactly one of lane_precond / precond_failures.
        {
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            ++counters_.precond_failures;
        }
        r.status = RequestStatus::Failed;
        r.reason = e.what();
        finishRequest(p, r, 0, t_start);
    }
}

void
SolveService::handleAnalogFailure(Pending &p, SolveResponse &r,
                                  const std::string &why, bool dead,
                                  Clock::time_point exec_start)
{
    // Health first. recordFailure reports the bench edge itself —
    // the atomic read-back concurrent per-die executors need (a
    // before/after read of the health slot would race).
    bool benched = pool_.recordFailure(p.die, dead);
    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++counters_.analog_failures;
        if (benched)
            ++counters_.quarantines;
    }

    if (!p.chain.empty())
        p.chain += "; ";
    p.chain += detail::concat("die ", p.die, ": ", why);
    r.failure_chain = p.chain;

    if (p.has_deadline && Clock::now() >= p.deadline_at) {
        r.status = RequestStatus::DeadlineExpired;
        r.reason = "deadline expired during retry chain";
        finishRequest(p, r, 0, exec_start);
        return;
    }

    p.tried.push_back(p.die);
    if (p.reroutes < opts_.max_reroutes &&
        p.tried.size() < pool_.size()) {
        // Hand the request back to the scheduler: the next round
        // routes it to a die this chain has not burned (or to the
        // fallback lane if none is routable). Re-routing at round
        // boundaries keeps one-task-per-die intact.
        ++p.reroutes;
        {
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            ++counters_.reroutes;
        }
        p.prior_attempts = r.attempts;
        p.prior_analog_seconds = r.analog_seconds;
        p.prior_phases = r.phases;
        requeue(std::move(p));
        return; // promise unset: the request lives on
    }

    if (opts_.precond_lane && !p.precond_tried &&
        p.req.lane == LanePreference::Auto &&
        opts_.max_reroutes > 0) {
        // Ladder rung between the exhausted analog chain and digital
        // fallback: one analog-preconditioned Krylov attempt, run
        // inline — we are already on this die's executor, so
        // one-task-per-die holds, and the rung's position in the
        // die's op stream is deterministic at any thread count (a
        // requeue would land at a timing-dependent round boundary
        // under pipelined dispatch). A zero reroute budget means "no
        // further analog attempts": such a service degrades
        // immediately, skipping this rung too.
        p.precond_stage = true;
        executePrecond(p, r, exec_start);
        return;
    }

    if (opts_.pipeline) {
        // Exhausted chain: hand it to the digital-CG lane so this
        // die's executor moves straight on to its next unit instead
        // of grinding a CG solve — a degraded request must never
        // stall a healthy die.
        p.prior_attempts = r.attempts;
        p.prior_analog_seconds = r.analog_seconds;
        p.prior_phases = r.phases;
        p.force_fallback = true;
        {
            std::lock_guard<std::mutex> lock(fb_.mu);
            fb_.q.push_back(std::move(p));
        }
        fb_.cv.notify_all();
        return; // promise unset: the fallback lane answers
    }

    finishWithFallback(p, r);
    finishRequest(p, r, 0, exec_start);
}

void
SolveService::finishWithFallback(Pending &p, SolveResponse &r)
{
    r.reroutes = p.reroutes;
    r.failure_chain = p.chain;
    if (!opts_.digital_fallback) {
        r.status = RequestStatus::Failed;
        r.reason = p.chain.empty() ? "no routable die" : p.chain;
        return;
    }
    la::DenseOperator op(*p.req.a);
    const double tol = p.req.tolerance > 0.0
                           ? p.req.tolerance
                           : opts_.fallback_tolerance;
    const double bnorm = la::norm2(p.req.b);
    if (p.symmetric) {
        solver::IterOptions io;
        io.max_iters = opts_.fallback_max_iters;
        io.criterion = solver::Criterion::RelativeResidual;
        io.tol = tol;
        if (!p.req.u0.empty())
            io.x0 = p.req.u0;
        solver::IterResult cg =
            solver::conjugateGradient(op, p.req.b, io);
        r.u = std::move(cg.x);
        r.converged = cg.converged;
        r.residual =
            cg.final_residual / (bnorm > 0.0 ? bnorm : 1.0);
    } else {
        // CG's short recurrence needs SPD; nonsymmetric systems
        // degrade to restarted FGMRES with an identity precond.
        solver::KrylovOptions ko;
        ko.max_iters = opts_.fallback_max_iters;
        ko.tol = tol;
        if (!p.req.u0.empty())
            ko.x0 = p.req.u0;
        solver::KrylovResult g = solver::fgmres(
            op, p.req.b, solver::identityPreconditioner(), ko);
        r.u = std::move(g.x);
        r.converged = g.converged;
        r.residual =
            g.final_residual / (bnorm > 0.0 ? bnorm : 1.0);
        r.krylov_iterations = g.iterations;
    }
    r.degraded = true;
    r.verified = true; // the exit residual is a digital measurement
    r.lane = SolveLane::DigitalCg;
    r.status = RequestStatus::Ok;
    r.reason = p.chain.empty()
                   ? "no routable die; digital fallback"
                   : "analog attempts exhausted; digital fallback";
}

void
SolveService::finishRequest(Pending &p, SolveResponse &r,
                            std::size_t solves,
                            Clock::time_point exec_start)
{
    r.service_seconds = secondsSince(p.submitted_at);
    double busy = secondsSince(exec_start);

    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        // A request fulfils exactly one of completed/expired: giving
        // up on a deadline — queued or mid retry chain — is not a
        // completion.
        switch (r.status) {
        case RequestStatus::Ok:
            ++counters_.completed;
            ++counters_.ok;
            // Every Ok answer claims exactly one lane counter
            // (metrics.hh invariant: the four lanes sum to ok).
            switch (r.lane) {
            case SolveLane::Analog:
                ++counters_.lane_analog;
                break;
            case SolveLane::AnalogRefined:
                ++counters_.lane_refined;
                break;
            case SolveLane::AnalogPrecond:
                ++counters_.lane_precond;
                break;
            case SolveLane::DigitalCg:
                ++counters_.lane_digital;
                break;
            case SolveLane::None:
                // Unreachable: every Ok-producing path stamps a
                // lane. Claim analog so the invariant still holds.
                ++counters_.lane_analog;
                break;
            }
            break;
        case RequestStatus::DeadlineExpired:
            ++counters_.deadline_expired;
            break;
        case RequestStatus::Failed:
            ++counters_.completed;
            ++counters_.failed;
            break;
        default:
            ++counters_.completed;
            break;
        }
        if (r.refine_passes > 1)
            counters_.retries += r.refine_passes - 1;
        if (r.degraded)
            ++counters_.fallbacks;
        counters_.cache_hits += r.phases.cache_hits;
        counters_.cache_misses += r.phases.cache_misses;
        counters_.config_bytes += r.phases.config_bytes;
        if (p.die != SIZE_MAX) {
            if (r.affine_hit)
                ++counters_.affinity_hits;
            else
                ++counters_.affinity_misses;
            DieServiceStats &d = counters_.dies[p.die];
            ++d.requests;
            d.solves += solves;
            d.affine_routed += r.affine_hit ? 1 : 0;
            d.busy_seconds += busy;
            // Only this request's own integration time — prior_phases
            // carries run_seconds already billed to the dies the
            // retry chain burned through.
            d.integrate_seconds +=
                r.phases.run_seconds - p.prior_phases.run_seconds;
            d.cache_hits += r.phases.cache_hits;
            d.cache_misses += r.phases.cache_misses;
        }
        latency_.add(r.service_seconds);
        latency_running_.add(r.service_seconds);
    }

    // Completion hook (shard quota release) runs outside the metrics
    // lock, before the caller's future is unblocked.
    if (opts_.on_complete)
        opts_.on_complete(p.req, r);
    p.promise.set_value(std::move(r));

    if (p.in_pipeline) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            p.in_pipeline = false;
            --pipeline_inflight_;
        }
        cv_.notify_all();
        cv_idle_.notify_all();
    }
}

void
SolveService::requeue(Pending p)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Leaving the pipeline for the scheduler queue: the handoff
        // is atomic with the push, so the stopping scheduler never
        // sees (empty queue, zero in flight) while a reroute exists.
        if (p.in_pipeline) {
            p.in_pipeline = false;
            --pipeline_inflight_;
        }
        // Bypasses the admission capacity check: the request was
        // admitted once and the queue slot it freed covers it.
        queue_.push_back(std::move(p));
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        counters_.queue_depth = queue_.size();
        counters_.queue_peak =
            std::max(counters_.queue_peak, queue_.size());
    }
    cv_.notify_all();
}

void
SolveService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [&] {
        return (queue_.empty() || paused_) && !round_in_flight_ &&
               pipeline_inflight_ == 0;
    });
}

void
SolveService::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_ && !accepting_) {
            // Already stopped (idempotent).
            if (!scheduler_.joinable())
                return;
        }
        accepting_ = false;
        stopping_ = true;
        paused_ = false; // stop always drains what was admitted
    }
    cv_.notify_all();
    if (scheduler_.joinable())
        scheduler_.join();
    // The scheduler exits only once the queue is empty AND no
    // pipelined request is in flight, so the lanes below are idle;
    // closing them just retires the threads. Executors push
    // exhausted chains to the fallback lane, so it closes last.
    for (auto &lane : lanes_) {
        {
            std::lock_guard<std::mutex> lock(lane->mu);
            lane->rounds_closed = true;
        }
        lane->cv.notify_all();
    }
    for (auto &lane : lanes_)
        if (lane->stager.joinable())
            lane->stager.join();
    for (auto &lane : lanes_)
        if (lane->executor.joinable())
            lane->executor.join();
    {
        std::lock_guard<std::mutex> lock(fb_.mu);
        fb_.closed = true;
    }
    fb_.cv.notify_all();
    if (fb_.worker.joinable())
        fb_.worker.join();
    workers_.shutdownWorkers();
}

void
SolveService::pause()
{
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
}

void
SolveService::resume()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        paused_ = false;
    }
    cv_.notify_all();
}

ServiceMetrics
SolveService::metrics() const
{
    std::lock_guard<std::mutex> mlock(metrics_mu_);
    ServiceMetrics m;
    static_cast<ServiceCounters &>(m) = counters_;
    // Injector counters are internally locked, so reading them from
    // here is safe at any time.
    m.faults_seen = pool_.faultsSeen();
    // Eviction counts live in the dies' program caches; snapshot
    // them here so per-die and pool totals reconcile exactly.
    for (std::size_t k = 0; k < pool_.size(); ++k) {
        std::size_t ev = pool_.die(k).cacheStats().evictions;
        if (k < m.dies.size())
            m.dies[k].cache_evictions = ev;
        m.cache_evictions += ev;
    }
    m.wall_seconds = secondsSince(started_at_);
    m.latency_p50 = latency_.quantile(0.50);
    m.latency_p95 = latency_.quantile(0.95);
    m.latency_p99 = latency_.quantile(0.99);
    m.latency_max = latency_running_.max();
    m.latency_mean = latency_running_.mean();
    return m;
}

} // namespace aa::service
