/**
 * @file
 * The solve-request service: the host-side front door the paper's
 * Table I ISA implies. Clients submit asynchronous SolveRequests;
 * the service admits them into a bounded queue (rejecting with a
 * reason when full — backpressure, not unbounded memory), groups
 * compatible requests by sparsity-pattern hash, and schedules the
 * groups across a DiePool with **cache affinity**: a pattern whose
 * CompiledStructure is already resident in some die's ProgramCache is
 * routed back to that die, so steady-state traffic reuses the live
 * crossbar configuration and pays only delta-reconfiguration bytes
 * (DESIGN.md 5c). Routing is the throughput story of the related
 * in-memory work: analog arrays win on sustained request streams, not
 * single solves, which makes keeping every die busy — and warm — the
 * scheduler's whole job.
 *
 * Determinism contract: scheduling decisions are pure functions of
 * the drained batch (priority, submission order, cache residency) —
 * never of timing. With one die and AASIM_THREADS=1 a request trace
 * executes exactly like calling AnalogLinearSolver directly in the
 * stamped execution order, bit for bit. At higher thread counts each
 * die still executes its requests sequentially in the stamped order;
 * only cross-die overlap changes.
 *
 * Threading: submit() may be called from any thread. One scheduler
 * thread drains the queue in rounds and fans each round across the
 * pool's dies via ThreadPool::parallelForWorkers — one task per die,
 * so a die's solver is never entered concurrently. metrics() may be
 * called any time; PoolReport should be read after drain()/stop().
 *
 * Pipelined mode (ServiceOptions::pipeline) swaps the round barrier
 * for persistent per-die stager/executor thread pairs fed by bounded
 * FIFOs, plus a dedicated digital-CG lane. A die's solver is still
 * driven by exactly one executor thread; the stager only runs the
 * solver's prepare path, which is safe concurrently by design
 * (read-only config probes, internally locked caches). See
 * DESIGN.md 5i.
 */

#ifndef AA_SERVICE_SERVICE_HH
#define AA_SERVICE_SERVICE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aa/analog/die_pool.hh"
#include "aa/common/parallel.hh"
#include "aa/common/stats.hh"
#include "aa/la/dense_matrix.hh"
#include "aa/la/vector.hh"
#include "aa/service/metrics.hh"

namespace aa::service {

/** Why a response ended the way it did. */
enum class RequestStatus {
    Ok,               ///< solved (check `converged` for tolerance)
    RejectedQueueFull, ///< bounced at admission: queue at capacity
    RejectedShutdown,  ///< bounced at admission: service stopping
    RejectedInvalid,   ///< bounced at admission: malformed request
    RejectedQuota,     ///< bounced at admission: tenant over quota
    DeadlineExpired,   ///< deadline passed before/while solving
    Failed,            ///< execution threw; see `reason`
};

/**
 * Which rung of the degradation ladder answered a request (recorded
 * in SolveResponse and, mutually exclusively, in ServiceMetrics).
 */
enum class SolveLane {
    None,          ///< no answer produced (rejected/expired/failed)
    Analog,        ///< single verified (or raw) analog solve
    AnalogRefined, ///< Algorithm-2 refinement on a die
    AnalogPrecond, ///< analog-preconditioned Krylov (CG/FGMRES)
    DigitalCg,     ///< host-side digital fallback (degraded)
};

/** Caller's lane preference: where on the ladder a request starts. */
enum class LanePreference {
    /** The full ladder: verified analog (refined when tolerance>0),
     *  reroute chain, analog-preconditioned Krylov, digital CG.
     *  Nonsymmetric matrices skip the doomed pure-analog rung and
     *  start at the preconditioned lane. */
    Auto,
    /** Never enter the preconditioned lane (legacy ladder). */
    AnalogOnly,
    /** Start at the analog-preconditioned Krylov lane. */
    PrecondKrylov,
    /** Answer digitally without touching a die (always degraded). */
    DigitalOnly,
};

/** One asynchronous solve job. */
struct SolveRequest {
    /** System matrix (SPD for convergence); shared so many requests
     *  of the same operator carry one copy. Must be non-null. */
    std::shared_ptr<const la::DenseMatrix> a;
    la::Vector b;
    la::Vector u0; ///< optional warm start (tolerance == 0 path only)

    /** Relative residual target ||b - A u||_2 <= tolerance * ||b||_2.
     *  0 = single accelerator solve, no digital residual check — the
     *  raw ADC-precision path. */
    double tolerance = 0.0;
    /** Extra Algorithm-2 refinement passes allowed beyond the first
     *  solve when chasing `tolerance`. */
    std::size_t max_refine_passes = 4;
    /** Wall-clock budget in seconds from submission; 0 = none. The
     *  re-scaling retry loop inside one accelerator run is never
     *  interrupted; the deadline gates between refinement passes. */
    double deadline_seconds = 0.0;
    /** Higher runs earlier within a scheduling round. */
    int priority = 0;
    /** Ladder entry point; Auto for almost everyone. */
    LanePreference lane = LanePreference::Auto;

    /** Tenant the request bills to; empty = the default tenant. The
     *  sharded front door's admission gate enforces per-tenant
     *  weighted quotas on it (the field is free-form here — a plain
     *  SolveService ignores it beyond ordering, below). */
    std::string tenant;
    /** Weighted-fair-queueing virtual finish time, stamped by the
     *  shard admission gate; drained rounds order by (priority,
     *  fair_rank, seq). Direct callers leave it 0, which preserves
     *  the legacy pure (priority, seq) order bit for bit. */
    double fair_rank = 0.0;
};

/** Completion of one request, delivered through its future. */
struct SolveResponse {
    RequestStatus status = RequestStatus::Ok;
    std::string reason; ///< human-readable detail for non-Ok statuses

    la::Vector u;           ///< best solution (may be partial)
    bool converged = false; ///< tolerance met (or solver settled)
    double residual = 0.0;  ///< relative L2 residual when measured

    /** Which ladder lane produced the answer (None when no answer
     *  was produced). */
    SolveLane lane = SolveLane::None;
    /** Outer Krylov iterations (preconditioned or digital-fallback
     *  FGMRES; 0 on the plain analog/CG paths). */
    std::size_t krylov_iterations = 0;
    /** Analog preconditioner applies this answer consumed. */
    std::size_t precond_applies = 0;

    /** The answer came from the digital CG fallback, not a die —
     *  correct, but without the analog speedup. */
    bool degraded = false;
    /** The answer passed a digital residual check before delivery. */
    bool verified = false;
    /** Dies tried beyond the first routing decision. */
    std::size_t reroutes = 0;
    /** Per-die failure history ("die 2: <why>; ..."), empty when the
     *  first attempt succeeded. Deterministic for a given seed. */
    std::string failure_chain;

    std::size_t die = SIZE_MAX;     ///< die that executed the request
    bool affine_hit = false;        ///< structure was resident there
    std::size_t exec_order = SIZE_MAX; ///< global execution slot
    std::size_t attempts = 0;       ///< solver re-scaling attempts
    std::size_t refine_passes = 0;  ///< accelerator passes run
    double analog_seconds = 0.0;
    analog::SolvePhaseReport phases;

    double queue_seconds = 0.0;   ///< submit -> execution start
    double service_seconds = 0.0; ///< submit -> completion
};

/** Service configuration. */
struct ServiceOptions {
    /** Bounded admission queue; submit() rejects beyond this. */
    std::size_t queue_capacity = 64;
    /** Most requests drained per scheduling round; 0 = whole queue. */
    std::size_t max_batch = 0;
    /** Route by ProgramCache residency (false = round-robin, the
     *  affinity-blind baseline the bench compares against). */
    bool cache_affinity = true;
    /** Fold contiguous same-matrix tolerance==0 requests on a die
     *  into one solveBatch call: the structure fetch and eigen
     *  analysis are paid once per batch, and members after the first
     *  start from the derived range hint (the previous member's
     *  sigma scaled by the RHS-peak ratio), so scaled right-hand
     *  sides rebind onto the live registers in one attempt and ship
     *  zero config bytes. The batch's first member is bit-identical
     *  to the unbatched path; later members agree at round-off level
     *  (they unscale by an ulps-different sigma) while skipping the
     *  unhinted ladder's range-discovery retries. Requests with
     *  deadlines or tolerance>0 always run solo. Off by default:
     *  the legacy one-call-per-request execution path. */
    bool batch_multi_rhs = false;
    /** Dispatch concurrency across dies: 0 = AASIM_THREADS default;
     *  always capped to the pool size. */
    std::size_t threads = 0;
    /** Pipelined per-die execution: replace the round-barriered
     *  fan-out with persistent per-die stager/executor thread pairs
     *  fed by bounded FIFO queues. While a die integrates request k,
     *  its stager runs the digital half of request k+1 off-die
     *  (scaling, eigen analysis, structure fetch, parameter binding,
     *  staged config delta), so the die goes straight back to
     *  integrating — the duty-cycle story of DESIGN.md 5i. Routing
     *  stays deterministic: affinity queries go against the
     *  scheduler's own residency model instead of the (now
     *  concurrently mutating) program caches, and each die's FIFO
     *  order is still a pure function of (priority, fair_rank, seq,
     *  residency). Digital-CG fallbacks run on their own lane so a
     *  degraded request never blocks a healthy die. Off by default:
     *  the legacy barriered dispatch, bit-identical to previous
     *  releases at one die and AASIM_THREADS=1. */
    bool pipeline = false;
    /** Bounded depth of each die's round and unit FIFOs (how far a
     *  stager may run ahead of its executor). Depth 1 still overlaps
     *  staging with integration; deeper queues smooth uneven rounds
     *  at the cost of staler staged deltas. */
    std::size_t pipeline_depth = 2;
    /** Construct with the scheduler paused; tests and benches build a
     *  full queue, then resume() to dispatch it as one round. */
    bool start_paused = false;
    /** Latency samples retained for the percentile window. */
    std::size_t latency_window = 4096;

    // --- resilience ----------------------------------------------
    /** Check tolerance==0 analog answers against the digital
     *  residual before returning them (tolerance>0 refinement
     *  measures residuals by construction). Off = the raw legacy
     *  path: whatever the ADCs said is the answer. */
    bool residual_verify = true;
    /** Acceptance bar for the check: ||b - A u|| / ||b|| at or
     *  under this is a verified answer. Loose by design — it
     *  catches faults (which are orders of magnitude off), not
     *  ADC quantization. */
    double verify_rel_residual = 0.2;
    /** Local repairs (recalibrate + full reprogram) per die before
     *  the request gives that die up. */
    std::size_t max_die_recoveries = 1;
    /** Re-routes to a different die before falling back. */
    std::size_t max_reroutes = 2;
    /** When analog attempts are exhausted (or no die is routable),
     *  answer with digital CG and mark the response degraded
     *  instead of failing it. */
    bool digital_fallback = true;
    std::size_t fallback_max_iters = 10000;
    /** Residual target of the fallback CG (also used when the
     *  request's own tolerance is 0). */
    double fallback_tolerance = 1e-10;

    // --- analog-preconditioned Krylov lane (DESIGN.md 5k) --------
    /** Enable the ladder's middle lane: host-side flexible CG /
     *  FGMRES with an unrefined analog solve as the preconditioner.
     *  Entered by nonsymmetric Auto requests directly, by explicit
     *  LanePreference::PrecondKrylov, and by exhausted analog retry
     *  chains on their way down to digital CG. */
    bool precond_lane = true;
    /** Outer-iteration budget; exhaustion falls through to the next
     *  ladder lane. Each iteration is one analog apply, so this also
     *  bounds die time per lane entry. */
    std::size_t precond_max_iters = 64;
    /** FGMRES restart length for the lane's nonsymmetric path. */
    std::size_t precond_restart = 30;
    /** Residual target when the request's own tolerance is 0. */
    double precond_tolerance = 1e-8;

    // --- fleet hooks ---------------------------------------------
    /** Called at the end of every scheduling round — after dispatch
     *  and the pool's health tick, from the scheduler thread, while
     *  no worker is touching the pool. The placement layer hangs its
     *  rebalancer here. Argument: rounds dispatched so far. */
    std::function<void(std::size_t)> on_round_end;
    /** Called once per finished request, just before its future is
     *  fulfilled (from whichever dispatch thread ran it). The shard
     *  admission gate releases tenant quota slots here. Rejected-at-
     *  admission requests never reach it. */
    std::function<void(const SolveRequest &, const SolveResponse &)>
        on_complete;
};

/** An already-rejected response future (admission gates use this to
 *  bounce without touching a scheduler). */
std::future<SolveResponse> rejectedFuture(RequestStatus status,
                                          std::string reason);

/**
 * The service. Owns a scheduler thread and a dispatch ThreadPool;
 * borrows the DiePool (caller keeps it alive and refrains from
 * running its dies concurrently with the service).
 */
class SolveService
{
  public:
    SolveService(analog::DiePool &pool, ServiceOptions opts = {});
    ~SolveService(); ///< stop(): drains the queue, joins the thread

    SolveService(const SolveService &) = delete;
    SolveService &operator=(const SolveService &) = delete;

    /**
     * Admit a request. Always returns a valid future: rejected
     * requests (queue full, shutdown, invalid) complete immediately
     * with the matching status and a reason string.
     */
    std::future<SolveResponse> submit(SolveRequest req);

    /** Block until the queue is empty and no round is in flight. */
    void drain();

    /** Stop admitting, drain what is queued, join the scheduler.
     *  Idempotent. */
    void stop();

    /** Hold/resume dispatch; requests queue up while paused. */
    void pause();
    void resume();

    /** Consistent snapshot of the counters and latency window. */
    ServiceMetrics metrics() const;

    std::size_t dies() const { return pool_.size(); }

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending {
        SolveRequest req;
        std::promise<SolveResponse> promise;
        std::uint64_t seq = 0;
        std::uint64_t pattern = 0; ///< sparsityHash(*req.a)
        std::size_t n = 0;
        std::chrono::steady_clock::time_point submitted_at;
        bool has_deadline = false;
        std::chrono::steady_clock::time_point deadline_at;
        /** Stamped at admission (A never changes after submit). */
        bool symmetric = true;
        // Stamped by the scheduler.
        std::size_t die = SIZE_MAX;
        bool affine_hit = false;
        std::size_t exec_order = SIZE_MAX;
        // Retry-chain state (survives requeues).
        std::vector<std::size_t> tried; ///< dies that failed this req
        std::string chain;              ///< failure chain so far
        std::size_t reroutes = 0;
        /** This visit runs the analog-preconditioned Krylov lane. */
        bool precond_stage = false;
        /** The lane has been entered once already (one shot per
         *  request keeps the ladder finite and deterministic). */
        bool precond_tried = false;
        std::size_t prior_attempts = 0;
        double prior_analog_seconds = 0.0;
        analog::SolvePhaseReport prior_phases;
        // Pipelined-dispatch state.
        bool in_pipeline = false;     ///< counted in pipeline_inflight_
        bool force_fallback = false;  ///< exhausted chain: CG lane
    };

    /** Routing decision for one drained round. */
    struct RoutePlan {
        std::vector<std::vector<Pending>> by_die;
        /** Unroutable requests (no eligible die): fallback lane. */
        std::vector<Pending> fallback;
    };

    /** One unit of die work in the pipelined path: a multi-RHS batch
     *  or a solo request, the latter optionally carrying its already-
     *  prepared host-side half (built by the stager while the die's
     *  executor integrated the previous unit). */
    struct ExecUnit {
        std::vector<Pending> items;
        bool is_batch = false;
        bool has_prep = false;
        analog::PreparedSolve prep;
    };

    /** Per-die pipeline lane: the scheduler pushes routed rounds in
     *  (bounded), the stager turns them into ExecUnits — running
     *  prepareSolve off-die — and the executor consumes units in
     *  FIFO order, so a die's requests still execute sequentially in
     *  the stamped order. */
    struct DieLane {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<std::vector<Pending>> rounds;
        std::deque<ExecUnit> units;
        bool rounds_closed = false;
        bool units_closed = false;
        std::thread stager;
        std::thread executor;
    };

    /** The digital-CG lane: exhausted retry chains and unroutable
     *  requests execute here, off every die's critical path. */
    struct FallbackLane {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<Pending> q;
        bool closed = false;
        std::thread worker;
    };

    /** The scheduler's deterministic model of one die's program-cache
     *  residency (MRU at the front, trimmed to the cache capacity).
     *  The pipelined router queries this instead of the live caches —
     *  which executors are mutating concurrently — so affinity stays
     *  a pure function of the assignment history. */
    struct ResidencyModel {
        std::size_t capacity = 1;
        std::vector<std::pair<std::uint64_t, std::size_t>> entries;
        bool
        contains(std::uint64_t pattern, std::size_t n) const
        {
            for (const auto &e : entries)
                if (e.first == pattern && e.second == n)
                    return true;
            return false;
        }
        void
        touch(std::uint64_t pattern, std::size_t n)
        {
            for (std::size_t i = 0; i < entries.size(); ++i)
                if (entries[i].first == pattern &&
                    entries[i].second == n) {
                    entries.erase(entries.begin() +
                                  static_cast<std::ptrdiff_t>(i));
                    break;
                }
            entries.insert(entries.begin(), {pattern, n});
            if (entries.size() > capacity)
                entries.resize(capacity);
        }
    };

    void schedulerLoop();
    /** Deterministic routing of one drained round. */
    RoutePlan routeRound(std::vector<Pending> round);
    void dispatchRound(RoutePlan plan);
    /** Run one die's stamped request list: with batch_multi_rhs on,
     *  contiguous batchable same-matrix runs go through
     *  executeBatch; everything else executes solo, in order. */
    void executeDie(std::vector<Pending> &list);
    /** May this request join a multi-RHS batch? */
    bool batchable(const Pending &p) const;
    /** Execute list[begin, end) as one solveBatch on their shared
     *  die. Members failing the digital residual check (or an
     *  exception aborting the whole batch) fall out to
     *  executeRequest — the solo verified path with local recovery
     *  and the reroute chain. */
    void executeBatch(std::vector<Pending> &list, std::size_t begin,
                      std::size_t end);
    /** Execute one request; a non-null prep is the stager's already-
     *  built host-side half (consumed only on the tolerance==0
     *  paths; inert — an unused prep needs no cleanup). */
    void executeRequest(Pending &p,
                        analog::PreparedSolve *prep = nullptr);
    /** Should this visit of p run the preconditioned lane? */
    bool wantsPrecond(const Pending &p) const;
    /** Run the analog-preconditioned Krylov lane on p.die. Returns
     *  through finishRequest on success; failure goes through
     *  handleAnalogFailure (reroute / next ladder lane). */
    void executePrecond(Pending &p, SolveResponse &r,
                        Clock::time_point t_start);
    /** Pipelined threads (per die): segment rounds into units and
     *  prepare solos off-die / consume units in FIFO order. */
    void stagerLoop(std::size_t k);
    void executorLoop(std::size_t k);
    /** Digital-CG lane worker. */
    void fallbackLoop();
    /** Analog failed on p.die: record health/metrics and either
     *  requeue for another die, fall back, or fail/expire. */
    void handleAnalogFailure(Pending &p, SolveResponse &r,
                             const std::string &why, bool dead,
                             Clock::time_point exec_start);
    /** Answer with digital CG (degraded) or Failed when disabled. */
    void finishWithFallback(Pending &p, SolveResponse &r);
    void finishRequest(Pending &p, SolveResponse &r,
                       std::size_t solves,
                       Clock::time_point exec_start);
    std::future<SolveResponse> rejectNow(RequestStatus status,
                                         std::string reason);
    /** Put a request back in the queue for the next round (retry on
     *  a different die). Keeps its seq, so ordering stays a pure
     *  function of submission order. */
    void requeue(Pending p);

    analog::DiePool &pool_;
    ServiceOptions opts_;
    ThreadPool workers_; ///< dispatch pool (scheduler participates)

    mutable std::mutex mu_;       ///< queue + lifecycle state
    std::condition_variable cv_;  ///< scheduler wakeups
    std::condition_variable cv_idle_; ///< drain() wakeups
    std::deque<Pending> queue_;
    bool accepting_ = true;
    bool stopping_ = false;
    bool paused_ = false;
    bool round_in_flight_ = false;
    std::uint64_t next_seq_ = 0;
    std::uint64_t rr_cursor_ = 0; ///< round-robin routing state
    std::size_t exec_counter_ = 0;
    std::vector<std::size_t> die_lifetime_requests_; ///< load balance
    /** Requests handed to pipeline lanes and not yet finished or
     *  requeued (guarded by mu_); drain()/stop() wait on it. */
    std::size_t pipeline_inflight_ = 0;
    /** Scheduler-thread-only routing state (pipelined mode). */
    std::vector<ResidencyModel> residency_;

    mutable std::mutex metrics_mu_;
    ServiceCounters counters_; ///< live counters; metrics() snapshots
    QuantileTracker latency_;
    RunningStats latency_running_;
    Clock::time_point started_at_; ///< occupancy denominator origin

    /** Pipeline lanes (empty when opts_.pipeline is off). Created
     *  before — and torn down after — the scheduler thread. */
    std::vector<std::unique_ptr<DieLane>> lanes_;
    FallbackLane fb_;

    std::thread scheduler_;
};

} // namespace aa::service

#endif // AA_SERVICE_SERVICE_HH
