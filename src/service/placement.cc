#include "aa/service/placement.hh"

#include <algorithm>

#include "aa/common/logging.hh"

namespace aa::service {

namespace {

/** splitmix64 finalizer: cheap, well-dispersed 64-bit mixing. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** Heat-table key for (pattern, n) — same fold as the router's
 *  grouping key. */
std::uint64_t
heatKey(std::uint64_t pattern, std::size_t n)
{
    return pattern * 1099511628211ULL ^ n;
}

} // namespace

ConsistentHashRing::ConsistentHashRing(std::size_t vnodes)
    : vnodes_(vnodes ? vnodes : 1)
{
}

void
ConsistentHashRing::addRack(std::size_t rack)
{
    for (const auto &pt : points_)
        if (pt.second == rack)
            return; // already a member
    for (std::size_t i = 0; i < vnodes_; ++i)
        points_.emplace_back(mix64(mix64(rack + 1) + i), rack);
    std::sort(points_.begin(), points_.end());
    ++racks_;
}

void
ConsistentHashRing::removeRack(std::size_t rack)
{
    std::size_t before = points_.size();
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [rack](const auto &pt) {
                                     return pt.second == rack;
                                 }),
                  points_.end());
    if (points_.size() != before)
        --racks_;
}

std::size_t
ConsistentHashRing::owner(std::uint64_t key) const
{
    fatalIf(points_.empty(), "ConsistentHashRing: no racks");
    // First point at or after the (re-dispersed) key; wrap to the
    // ring's first point past the top.
    std::uint64_t h = mix64(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), h,
        [](const auto &pt, std::uint64_t v) { return pt.first < v; });
    if (it == points_.end())
        it = points_.begin();
    return it->second;
}

PlacementPolicy::PlacementPolicy(PlacementOptions opts) : opts_(opts)
{
}

void
PlacementPolicy::record(std::uint64_t pattern, std::size_t n)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t key = heatKey(pattern, n);
    auto it = index_.find(key);
    if (it == index_.end()) {
        index_.emplace(key, entries_.size());
        entries_.push_back({pattern, n, 1.0});
    } else {
        entries_[it->second].heat += 1.0;
    }
}

std::size_t
PlacementPolicy::replicasWanted(double heat) const
{
    if (heat < opts_.hot_threshold)
        return 0;
    double extra = (heat - opts_.hot_threshold) /
                   std::max(opts_.per_replica_heat, 1e-9);
    std::size_t wanted = 1 + static_cast<std::size_t>(extra);
    return std::min(wanted, opts_.max_replicas);
}

void
PlacementPolicy::logEvent(std::string event)
{
    if (opts_.max_events == 0)
        return;
    if (events_.size() >= opts_.max_events)
        events_.erase(events_.begin());
    events_.push_back(std::move(event));
}

void
PlacementPolicy::rebalance(analog::DiePool &pool)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rebalances;

    // Cool every pattern; forget the ones the decay has buried. The
    // index is rebuilt because surviving entries keep their relative
    // (first-seen) order but not their slots.
    for (Entry &e : entries_)
        e.heat *= opts_.heat_decay;
    std::vector<Entry> kept;
    kept.reserve(entries_.size());
    for (Entry &e : entries_)
        if (e.heat >= opts_.evict_below)
            kept.push_back(e);
    entries_ = std::move(kept);
    index_.clear();
    for (std::size_t i = 0; i < entries_.size(); ++i)
        index_.emplace(heatKey(entries_[i].pattern, entries_[i].n), i);

    std::vector<std::size_t> avail = pool.availableDies();
    if (avail.empty())
        return; // nowhere to place; benched caches stay as they are

    std::vector<char> is_avail(pool.size(), 0);
    for (std::size_t k : avail)
        is_avail[k] = 1;

    // Placement load: tracked patterns resident per die. Seeded once,
    // maintained as installs/sheds land below.
    std::vector<std::size_t> load(pool.size(), 0);
    for (const Entry &e : entries_)
        for (std::size_t k : pool.diesWithPattern(e.pattern, e.n))
            ++load[k];

    // Least-loaded available die not already in `resident`; ties go
    // to the lowest index (avail is ascending). SIZE_MAX = none.
    auto pickTarget =
        [&](const std::vector<std::size_t> &resident) -> std::size_t {
        std::size_t best = SIZE_MAX;
        for (std::size_t k : avail) {
            if (std::find(resident.begin(), resident.end(), k) !=
                resident.end())
                continue;
            if (best == SIZE_MAX || load[k] < load[best])
                best = k;
        }
        return best;
    };

    // Re-home placements stranded on benched dies. The compiled
    // structures are host-side, so a quarantined (or even dead) die
    // still seeds its replacement; after the copy lands, the benched
    // placement is shed. A pattern that already has an available
    // copy just sheds — its traffic is already served.
    for (const Entry &e : entries_) {
        std::vector<std::size_t> resident =
            pool.diesWithPattern(e.pattern, e.n);
        bool has_avail_copy = false;
        for (std::size_t k : resident)
            if (is_avail[k])
                has_avail_copy = true;
        for (std::size_t k : resident) {
            if (is_avail[k])
                continue;
            if (!has_avail_copy) {
                std::size_t dst = pickTarget(resident);
                if (dst != SIZE_MAX &&
                    pool.replicatePattern(dst, e.pattern, e.n)) {
                    ++stats_.migrations;
                    ++stats_.placements;
                    ++load[dst];
                    has_avail_copy = true;
                    logEvent(detail::concat("migrate p=", e.pattern,
                                            " n=", e.n, " die ", k,
                                            " -> ", dst));
                }
            }
            if (has_avail_copy && pool.dropPattern(k, e.pattern, e.n)) {
                ++stats_.sheds;
                if (load[k])
                    --load[k];
                logEvent(detail::concat("shed p=", e.pattern,
                                        " n=", e.n, " die ", k));
            }
        }
    }

    // Replicate hot patterns ahead of demand. replicatePattern finds
    // its own source, so a pattern that has never compiled anywhere
    // simply fails the first copy and stays demand-loaded.
    for (const Entry &e : entries_) {
        std::size_t wanted =
            std::min(replicasWanted(e.heat), avail.size());
        if (wanted == 0)
            continue;
        for (;;) {
            std::vector<std::size_t> resident =
                pool.diesWithPattern(e.pattern, e.n);
            std::size_t current = 0;
            for (std::size_t k : resident)
                if (is_avail[k])
                    ++current;
            if (current >= wanted)
                break;
            std::size_t dst = pickTarget(resident);
            if (dst == SIZE_MAX ||
                !pool.replicatePattern(dst, e.pattern, e.n))
                break;
            ++stats_.replications;
            ++stats_.placements;
            ++load[dst];
            logEvent(detail::concat("replicate p=", e.pattern,
                                    " n=", e.n, " -> die ", dst,
                                    " heat=", e.heat));
        }
    }
}

PlacementStats
PlacementPolicy::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::vector<PatternHeat>
PlacementPolicy::heatMap(const analog::DiePool &pool) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<PatternHeat> map;
    map.reserve(entries_.size());
    for (const Entry &e : entries_) {
        PatternHeat row;
        row.pattern = e.pattern;
        row.n = e.n;
        row.heat = e.heat;
        row.replicas = pool.diesWithPattern(e.pattern, e.n).size();
        map.push_back(row);
    }
    return map;
}

std::vector<std::string>
PlacementPolicy::drainEvents()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out = std::move(events_);
    events_.clear();
    return out;
}

} // namespace aa::service
