/**
 * @file
 * Observability surface of the solve-request service. A production
 * deployment is steered by exactly these numbers: queue depth and
 * rejects tell the admission controller story, latency percentiles
 * tell the user story, and the cache/affinity counters tell whether
 * the scheduler is actually keeping steady-state traffic on the
 * delta-reconfiguration fast path (DESIGN.md 5c).
 *
 * A ServiceMetrics is a consistent snapshot taken under the service's
 * metrics lock; fields are plain values so callers can diff two
 * snapshots to measure an interval.
 */

#ifndef AA_SERVICE_METRICS_HH
#define AA_SERVICE_METRICS_HH

#include <cstddef>
#include <vector>

namespace aa::service {

/** What one die did on behalf of the service. */
struct DieServiceStats {
    std::size_t requests = 0;      ///< requests executed on this die
    std::size_t solves = 0;        ///< accelerator runs (incl. passes)
    std::size_t affine_routed = 0; ///< requests routed by residency
    std::size_t rhs_batched = 0;   ///< requests answered via a
                                   ///< multi-RHS batch on this die
    double busy_seconds = 0.0;     ///< wall time executing requests
    /** Host wall time inside execStart..readExp — the die actually
     *  integrating. integrate_seconds / service wall seconds is the
     *  die's duty cycle, the number pipelining exists to raise. */
    double integrate_seconds = 0.0;
    std::size_t cache_hits = 0;    ///< ProgramCache hits (this die)
    std::size_t cache_misses = 0;  ///< ProgramCache compiles
    /** ProgramCache evictions on this die (lifetime; read from the
     *  die at snapshot time — capacity-pressure truth, so a trace
     *  that should thrash or should hold can be asserted exactly). */
    std::size_t cache_evictions = 0;
};

/**
 * The service's live counter block. SolveService holds exactly this
 * as its internal state — no dead fields — and metrics() assembles
 * the full ServiceMetrics snapshot from it plus the latency trackers
 * and the pool's injector counters. That assembly is the single
 * source of truth for a snapshot; nothing else writes latency or
 * fault fields.
 */
struct ServiceCounters {
    // Admission.
    std::size_t submitted = 0;         ///< accepted into the queue
    std::size_t rejected_full = 0;     ///< bounced: queue at capacity
    std::size_t rejected_shutdown = 0; ///< bounced: service stopping
    std::size_t rejected_invalid = 0;  ///< bounced: malformed request
    std::size_t rejected_quota = 0;    ///< bounced: tenant over quota
    std::size_t queue_depth = 0;       ///< waiting right now
    std::size_t queue_peak = 0;        ///< high-water mark

    // Completion. A request fulfils exactly one of completed /
    // deadline_expired: giving up on a deadline — whether still
    // queued or mid retry chain — is not a completion.
    std::size_t completed = 0;        ///< answered (Ok or Failed)
    std::size_t ok = 0;               ///< status Ok
    std::size_t deadline_expired = 0; ///< gave up on the deadline
    std::size_t failed = 0;           ///< execution threw
    std::size_t retries = 0;          ///< refinement passes beyond
                                      ///< each request's first solve

    // Resilience: the fault-injection / degradation story.
    std::size_t analog_failures = 0; ///< unverifiable analog solves
    std::size_t recoveries = 0;      ///< local repairs that then
                                     ///< passed verification
    std::size_t reroutes = 0;        ///< requests requeued to try
                                     ///< a different die
    std::size_t quarantines = 0;     ///< dies benched by health
                                     ///< tracking (lifetime)
    std::size_t fallbacks = 0;       ///< answers served by digital
                                     ///< CG (degraded responses)

    // Lane accounting. Every Ok answer claims exactly ONE of the
    // four lane counters (they mirror SolveResponse::lane), so
    //   lane_analog + lane_refined + lane_precond + lane_digital == ok
    // holds at all times — the same mutual-exclusion discipline as
    // completed/deadline_expired above, asserted by the shared
    // property harness. Non-Ok responses claim no lane.
    std::size_t lane_analog = 0;  ///< single verified (or raw) solve
    std::size_t lane_refined = 0; ///< Algorithm-2 refinement path
    std::size_t lane_precond = 0; ///< analog-preconditioned Krylov
    std::size_t lane_digital = 0; ///< digital fallback (== degraded)

    // Precond-lane detail (analog-preconditioned Krylov).
    std::size_t precond_attempts = 0; ///< lane entries, incl. failed
    std::size_t precond_failures = 0; ///< entries that fell through
                                      ///< to the next ladder lane
    std::size_t krylov_iterations = 0; ///< outer iterations, summed
    std::size_t precond_applies = 0;   ///< analog M^-1 applies,
                                       ///< summed over lane entries

    // Scheduling.
    std::size_t batches = 0;        ///< scheduling rounds dispatched
    std::size_t affinity_hits = 0;  ///< requests landing on a die with
                                    ///< their structure resident
    std::size_t affinity_misses = 0;
    // Multi-RHS batching (ServiceOptions::batch_multi_rhs): same-
    // matrix runs folded into one solveBatch call, paying the
    // structure fetch and eigen analysis once per batch.
    std::size_t rhs_batches = 0;          ///< solveBatch calls issued
    std::size_t rhs_batched_requests = 0; ///< requests answered
                                          ///< through such a batch

    // Aggregated ProgramCache traffic of executed requests.
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t config_bytes = 0; ///< config traffic shipped

    std::vector<DieServiceStats> dies; ///< by die index
};

/** Snapshot of the service's counters and latency distribution:
 *  the counter block plus the fields only snapshot assembly fills
 *  (latency percentiles, pool-side fault counts). */
struct ServiceMetrics : ServiceCounters {
    /** Injector events fired across the pool (read from the
     *  injectors at snapshot time, never counted by the service). */
    std::size_t faults_seen = 0;

    /** Wall seconds since the service started (snapshot time). The
     *  denominator of the duty-cycle metrics below. */
    double wall_seconds = 0.0;

    /** ProgramCache evictions summed over the pool (snapshot-read
     *  from the dies, like faults_seen — the service never counts
     *  evictions itself). */
    std::size_t cache_evictions = 0;

    // Submit-to-completion latency over the recent window (seconds).
    double latency_p50 = 0.0;
    double latency_p95 = 0.0;
    double latency_p99 = 0.0;
    double latency_max = 0.0;
    double latency_mean = 0.0;

    /** Hits / (hits + misses); 1.0 when the cache saw no traffic. */
    double
    cacheHitRatio() const
    {
        std::size_t total = cache_hits + cache_misses;
        return total ? static_cast<double>(cache_hits) /
                           static_cast<double>(total)
                     : 1.0;
    }

    /** Affine routings / executed requests (1.0 when idle). */
    double
    affinityHitRatio() const
    {
        std::size_t total = affinity_hits + affinity_misses;
        return total ? static_cast<double>(affinity_hits) /
                           static_cast<double>(total)
                     : 1.0;
    }

    /** Die k's duty cycle: fraction of the service's wall time it
     *  spent integrating (0 when the service just started). */
    double
    dieOccupancy(std::size_t k) const
    {
        if (k >= dies.size() || wall_seconds <= 0.0)
            return 0.0;
        return dies[k].integrate_seconds / wall_seconds;
    }

    /** Mean duty cycle across the pool's dies — the headline
     *  pipelining metric; higher means better overlap of digital
     *  work with analog integration. */
    double
    poolOccupancy() const
    {
        if (dies.empty() || wall_seconds <= 0.0)
            return 0.0;
        double total = 0.0;
        for (const DieServiceStats &d : dies)
            total += d.integrate_seconds;
        return total /
               (wall_seconds * static_cast<double>(dies.size()));
    }
};

} // namespace aa::service

#endif // AA_SERVICE_METRICS_HH
