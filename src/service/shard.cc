#include "aa/service/shard.hh"

#include <algorithm>
#include <cmath>

#include "aa/common/logging.hh"
#include "aa/compiler/program.hh"

namespace aa::service {

Shard::Shard(std::size_t dies, analog::AnalogSolverOptions base,
             ShardOptions opts, analog::DieHealthPolicy health_policy)
    : opts_(std::move(opts)), pool_(dies, base, health_policy),
      placement_(opts_.placement)
{
    fatalIf(opts_.admission_capacity == 0,
            "Shard: admission capacity must be positive");
    for (const TenantWeight &tw : opts_.tenants) {
        if (tenants_.count(tw.name))
            continue;
        Tenant slot;
        slot.weight = tw.weight > 0.0 ? tw.weight : 1.0;
        tenant_order_.push_back(tw.name);
        tenants_.emplace(tw.name, slot);
        total_weight_ += slot.weight;
    }

    // The gate owns admission: anything it admits must never bounce
    // off the inner queue, so the inner bound matches the gate's
    // (queued <= in-flight <= admission_capacity). User hooks still
    // run, after the shard's own.
    ServiceOptions sopts = opts_.service;
    sopts.queue_capacity = opts_.admission_capacity;
    auto user_round = opts_.service.on_round_end;
    sopts.on_round_end = [this, user_round](std::size_t round) {
        placement_.rebalance(pool_);
        if (user_round)
            user_round(round);
    };
    auto user_complete = opts_.service.on_complete;
    sopts.on_complete = [this, user_complete](
                            const SolveRequest &req,
                            const SolveResponse &resp) {
        onComplete(req, resp);
        if (user_complete)
            user_complete(req, resp);
    };
    service_ = std::make_unique<SolveService>(pool_, sopts);
}

Shard::~Shard()
{
    stop();
}

std::size_t
Shard::quotaOf(const Tenant &t) const
{
    if (total_weight_ <= 0.0)
        return opts_.admission_capacity;
    double share = static_cast<double>(opts_.admission_capacity) *
                   t.weight / total_weight_;
    std::size_t quota = static_cast<std::size_t>(share);
    return std::max<std::size_t>(quota, 1);
}

Shard::Tenant &
Shard::tenantSlot(const std::string &name)
{
    auto it = tenants_.find(name);
    if (it != tenants_.end())
        return it->second;
    Tenant slot; // undeclared tenants weigh 1.0
    tenant_order_.push_back(name);
    total_weight_ += slot.weight;
    return tenants_.emplace(name, slot).first->second;
}

std::future<SolveResponse>
Shard::submit(SolveRequest req)
{
    // Malformed requests fall through to the inner service's
    // validation — its rejected_invalid counter stays the single
    // source of truth, and no gate slot is involved.
    if (!req.a || req.a->rows() == 0 ||
        req.a->rows() != req.a->cols() ||
        req.a->rows() != req.b.size() ||
        (!req.u0.empty() && req.u0.size() != req.b.size()))
        return service_->submit(std::move(req));

    std::uint64_t pattern = compiler::sparsityHash(*req.a);
    {
        std::lock_guard<std::mutex> lock(gate_mu_);
        if (!accepting_) {
            ++gate_rejected_shutdown_;
            return rejectedFuture(RequestStatus::RejectedShutdown,
                                  "shard is shutting down");
        }
        Tenant &t = tenantSlot(req.tenant);
        ++t.submitted;
        if (in_flight_ >= opts_.admission_capacity) {
            ++gate_rejected_full_;
            return rejectedFuture(
                RequestStatus::RejectedQueueFull,
                detail::concat("shard at capacity (",
                               opts_.admission_capacity,
                               " in flight)"));
        }
        std::size_t quota = quotaOf(t);
        if (t.in_flight >= quota) {
            ++t.rejected_quota;
            ++gate_rejected_quota_;
            return rejectedFuture(
                RequestStatus::RejectedQuota,
                detail::concat("tenant '", req.tenant,
                               "' over quota (", quota,
                               " in flight)"));
        }
        // Weighted virtual finish time: a tenant's k-th admission
        // ranks at k/weight, so a drained round interleaves tenants
        // in proportion to weight. Single-tenant streams get ranks
        // monotone in seq — the legacy order, bit for bit.
        req.fair_rank = static_cast<double>(t.admitted) / t.weight;
        ++t.admitted;
        ++t.in_flight;
        ++in_flight_;
        placement_.record(pattern, req.a->rows());
    }
    return service_->submit(std::move(req));
}

void
Shard::onComplete(const SolveRequest &req, const SolveResponse &)
{
    std::lock_guard<std::mutex> lock(gate_mu_);
    Tenant &t = tenantSlot(req.tenant);
    ++t.completed;
    if (t.in_flight)
        --t.in_flight;
    if (in_flight_)
        --in_flight_;
}

void
Shard::drain()
{
    service_->drain();
}

void
Shard::stop()
{
    {
        std::lock_guard<std::mutex> lock(gate_mu_);
        accepting_ = false;
    }
    service_->stop();
}

void
Shard::pause()
{
    service_->pause();
}

void
Shard::resume()
{
    service_->resume();
}

ServiceMetrics
Shard::metrics() const
{
    ServiceMetrics m = service_->metrics();
    std::lock_guard<std::mutex> lock(gate_mu_);
    // Gate-bounced requests never reached the inner service; fold
    // them in so "submitted" counts everything presented to the
    // shard, same as the inner counter does for its own rejections.
    m.submitted += gate_rejected_full_ + gate_rejected_quota_ +
                   gate_rejected_shutdown_;
    m.rejected_full += gate_rejected_full_;
    m.rejected_quota += gate_rejected_quota_;
    m.rejected_shutdown += gate_rejected_shutdown_;
    return m;
}

std::vector<TenantStats>
Shard::tenantStats() const
{
    std::lock_guard<std::mutex> lock(gate_mu_);
    std::vector<TenantStats> out;
    out.reserve(tenant_order_.size());
    for (const std::string &name : tenant_order_) {
        const Tenant &t = tenants_.at(name);
        TenantStats row;
        row.name = name;
        row.weight = t.weight;
        row.quota = quotaOf(t);
        row.submitted = t.submitted;
        row.admitted = t.admitted;
        row.rejected_quota = t.rejected_quota;
        row.completed = t.completed;
        row.in_flight = t.in_flight;
        out.push_back(std::move(row));
    }
    return out;
}

double
FleetMetrics::cacheHitRatio() const
{
    std::size_t total = cache_hits + cache_misses;
    return total ? static_cast<double>(cache_hits) /
                       static_cast<double>(total)
                 : 1.0;
}

double
FleetMetrics::affinityHitRatio() const
{
    std::size_t total = affinity_hits + affinity_misses;
    return total ? static_cast<double>(affinity_hits) /
                       static_cast<double>(total)
                 : 1.0;
}

double
FleetMetrics::occupancy() const
{
    return die_wall_seconds > 0.0
               ? integrate_seconds / die_wall_seconds
               : 0.0;
}

ShardedSolveService::ShardedSolveService(
    analog::AnalogSolverOptions base, FleetOptions opts,
    analog::DieHealthPolicy health_policy)
    : ring_(opts.vnodes)
{
    std::size_t racks = opts.racks ? opts.racks : 1;
    std::size_t dies = opts.dies_per_rack ? opts.dies_per_rack : 1;
    shards_.reserve(racks);
    for (std::size_t r = 0; r < racks; ++r) {
        ring_.addRack(r);
        // Racks are independently fabricated hardware: each derives
        // its own die-seed lineage so process variation differs
        // across the fleet, not just within a rack.
        analog::AnalogSolverOptions rack_base = base;
        rack_base.die_seed =
            base.die_seed + (static_cast<std::uint64_t>(r) << 32);
        shards_.push_back(std::make_unique<Shard>(
            dies, rack_base, opts.shard, health_policy));
    }
}

std::future<SolveResponse>
ShardedSolveService::submit(SolveRequest req)
{
    if (!req.a)
        return rejectedFuture(RequestStatus::RejectedInvalid,
                              "malformed request (null matrix)");
    std::uint64_t pattern = compiler::sparsityHash(*req.a);
    return shards_[ring_.owner(pattern)]->submit(std::move(req));
}

void
ShardedSolveService::drain()
{
    for (auto &s : shards_)
        s->drain();
}

void
ShardedSolveService::stop()
{
    for (auto &s : shards_)
        s->stop();
}

void
ShardedSolveService::pause()
{
    for (auto &s : shards_)
        s->pause();
}

void
ShardedSolveService::resume()
{
    for (auto &s : shards_)
        s->resume();
}

FleetMetrics
ShardedSolveService::metrics() const
{
    FleetMetrics fleet;
    fleet.shards.reserve(shards_.size());
    for (std::size_t r = 0; r < shards_.size(); ++r) {
        const Shard &s = *shards_[r];
        ShardSnapshot snap;
        snap.rack = r;
        snap.service = s.metrics();
        snap.placement = s.placementStats();
        snap.heat = s.heatMap();
        snap.tenants = s.tenantStats();

        fleet.submitted += snap.service.submitted;
        fleet.completed += snap.service.completed;
        fleet.ok += snap.service.ok;
        fleet.failed += snap.service.failed;
        fleet.fallbacks += snap.service.fallbacks;
        fleet.lane_analog += snap.service.lane_analog;
        fleet.lane_refined += snap.service.lane_refined;
        fleet.lane_precond += snap.service.lane_precond;
        fleet.lane_digital += snap.service.lane_digital;
        fleet.krylov_iterations += snap.service.krylov_iterations;
        fleet.precond_applies += snap.service.precond_applies;
        fleet.rejected_full += snap.service.rejected_full;
        fleet.rejected_quota += snap.service.rejected_quota;
        fleet.placements += snap.placement.placements;
        fleet.replications += snap.placement.replications;
        fleet.migrations += snap.placement.migrations;
        fleet.sheds += snap.placement.sheds;
        fleet.cache_hits += snap.service.cache_hits;
        fleet.cache_misses += snap.service.cache_misses;
        fleet.affinity_hits += snap.service.affinity_hits;
        fleet.affinity_misses += snap.service.affinity_misses;
        fleet.config_bytes += snap.service.config_bytes;
        for (const DieServiceStats &d : snap.service.dies)
            fleet.integrate_seconds += d.integrate_seconds;
        fleet.die_wall_seconds +=
            snap.service.wall_seconds *
            static_cast<double>(snap.service.dies.size());

        fleet.shards.push_back(std::move(snap));
    }
    return fleet;
}

} // namespace aa::service
