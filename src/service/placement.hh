/**
 * @file
 * Explicit program placement for the sharded solve fleet. Two pieces:
 *
 * ConsistentHashRing — stable request routing across racks. Each rack
 * contributes many virtual points on a 64-bit ring; a request's
 * sparsity-pattern hash is owned by the first point at or after it.
 * Adding or removing one rack of N moves only the keys that hashed
 * into the arcs its points covered (~1/N of traffic); every other
 * pattern keeps its shard, and with it its warm program caches.
 *
 * PlacementPolicy — the shard's placement brain, replacing emergent
 * cache affinity with decisions taken ahead of demand. It tracks
 * per-pattern heat (bumped at admission, decayed once per scheduling
 * round), replicates hot compiled structures onto additional dies
 * *before* the traffic lands there, re-homes placements off
 * quarantined/dead dies (the compiled structures are host-side and
 * survive a benched chip), and sheds placements the heat no longer
 * justifies. All pool mutations happen inside rebalance(), which the
 * service's on_round_end hook runs on the scheduler thread at round
 * boundaries — the one moment no worker is driving a die, matching
 * DiePool's ownership contract.
 *
 * Determinism: decisions are pure functions of the recorded request
 * stream and pool health — entries iterate in first-seen order,
 * targets pick the least-placed available die with the lowest index,
 * and nothing reads the clock.
 */

#ifndef AA_SERVICE_PLACEMENT_HH
#define AA_SERVICE_PLACEMENT_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aa/analog/die_pool.hh"

namespace aa::service {

/**
 * Consistent hashing over rack indices with virtual nodes. Not
 * thread-safe; the sharded front door mutates it only at
 * construction (membership changes mid-run would need external
 * synchronization anyway — routing must stay a pure function).
 */
class ConsistentHashRing
{
  public:
    /** vnodes = virtual points per rack; more points, smoother load
     *  split and smaller movement bound (at O(vnodes·racks) memory). */
    explicit ConsistentHashRing(std::size_t vnodes = 64);

    void addRack(std::size_t rack);
    void removeRack(std::size_t rack);

    /** Rack owning `key` (a sparsity-pattern hash). The ring must be
     *  non-empty. Pure: same key + membership, same owner. */
    std::size_t owner(std::uint64_t key) const;

    std::size_t racks() const { return racks_; }
    bool empty() const { return points_.empty(); }

  private:
    /** (ring position, rack) sorted by position. */
    std::vector<std::pair<std::uint64_t, std::size_t>> points_;
    std::size_t vnodes_;
    std::size_t racks_ = 0;
};

/** Placement tuning knobs. */
struct PlacementOptions {
    /** Per-round multiplier on every pattern's heat: recent traffic
     *  dominates, idle patterns cool toward eviction. */
    double heat_decay = 0.5;
    /** Heat at which a pattern earns its first guaranteed placement
     *  (and becomes a replication candidate). */
    double hot_threshold = 3.0;
    /** Extra heat per additional replica beyond the first. */
    double per_replica_heat = 6.0;
    /** Replicas per pattern at most (counting the original). */
    std::size_t max_replicas = 2;
    /** Heat below which a tracked pattern is forgotten. */
    double evict_below = 0.05;
    /** Bounded migration/replication event log (0 = keep none). */
    std::size_t max_events = 64;
};

/** Lifetime counters of one policy instance. */
struct PlacementStats {
    std::size_t placements = 0;   ///< structures installed by policy
    std::size_t replications = 0; ///< ahead-of-demand extra copies
    std::size_t migrations = 0;   ///< re-homed off a benched die
    std::size_t sheds = 0;        ///< placements dropped from dies
    std::size_t rebalances = 0;   ///< rebalance() rounds run
};

/** One row of the heat map snapshot. */
struct PatternHeat {
    std::uint64_t pattern = 0;
    std::size_t n = 0;
    double heat = 0.0;
    std::size_t replicas = 0; ///< dies currently holding it
};

/**
 * Heat-driven placement policy for one shard's DiePool. Internally
 * locked: record() may race in from submitter threads while
 * rebalance() runs on the scheduler thread.
 */
class PlacementPolicy
{
  public:
    explicit PlacementPolicy(PlacementOptions opts = {});

    /** Account one admitted request for (pattern, n): heat += 1. */
    void record(std::uint64_t pattern, std::size_t n);

    /**
     * One placement round against the pool, in order: decay heats
     * and forget cold patterns; re-home tracked placements off
     * quarantined/dead dies onto available ones (migration = copy to
     * the least-placed available die, then shed the benched copy);
     * replicate hot patterns onto additional available dies ahead of
     * demand. Call only at a round boundary (the service's
     * on_round_end hook) — it mutates die program caches.
     */
    void rebalance(analog::DiePool &pool);

    PlacementStats stats() const;

    /** Tracked patterns in first-seen order, replica counts read
     *  from the pool. Round-boundary read, like rebalance(). */
    std::vector<PatternHeat> heatMap(const analog::DiePool &pool) const;

    /** Drain the bounded event log ("replicate p=… -> die 2", …). */
    std::vector<std::string> drainEvents();

  private:
    struct Entry {
        std::uint64_t pattern;
        std::size_t n;
        double heat = 0.0;
    };

    /** Replicas the current heat justifies (0 for cold patterns). */
    std::size_t replicasWanted(double heat) const;
    void logEvent(std::string event);

    PlacementOptions opts_;
    mutable std::mutex mu_;
    std::vector<Entry> entries_; ///< first-seen order (determinism)
    std::unordered_map<std::uint64_t, std::size_t> index_;
    PlacementStats stats_;
    std::vector<std::string> events_;
};

} // namespace aa::service

#endif // AA_SERVICE_PLACEMENT_HH
