/**
 * @file
 * The sharded solve fleet: N racks (each a DiePool + SolveService +
 * PlacementPolicy bundle, a Shard) behind one front door. Requests
 * route to a rack by consistent hashing on their sparsity-pattern
 * hash, so a pattern's whole request stream lands on the rack whose
 * dies hold its compiled structure — and keeps landing there when
 * racks join or leave, because the ring moves only ~1/N of patterns
 * per membership change.
 *
 * Each shard guards its service with a weighted-fair admission gate:
 * tenants get in-flight quotas proportional to their declared
 * weights (unknown tenants weigh 1), a flooding tenant bounces with
 * RejectedQuota instead of starving everyone else, and admitted
 * requests carry a weighted-fair rank so a round drains tenants in
 * proportion to weight rather than arrival order.
 *
 * Determinism contract (inherited from SolveService and extended):
 * routing is a pure function of (tenant, priority, seq, residency,
 * heat) — the ring hashes the pattern, the gate's quotas and ranks
 * depend only on the admission sequence, and placement depends only
 * on recorded traffic and pool health. A 1-rack fleet with weights
 * absent degenerates to a plain SolveService: every fair rank is
 * monotone in seq, the gate only rejects what the service would
 * have, and traces stay bit-identical.
 */

#ifndef AA_SERVICE_SHARD_HH
#define AA_SERVICE_SHARD_HH

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aa/analog/die_pool.hh"
#include "aa/service/placement.hh"
#include "aa/service/service.hh"

namespace aa::service {

/** A tenant's declared share of a shard's admission capacity. */
struct TenantWeight {
    std::string name;
    double weight = 1.0;
};

/** One tenant's view of a shard's admission gate. */
struct TenantStats {
    std::string name;
    double weight = 1.0;
    std::size_t quota = 0; ///< current in-flight allowance
    std::size_t submitted = 0;
    std::size_t admitted = 0;
    std::size_t rejected_quota = 0;
    std::size_t completed = 0;
    std::size_t in_flight = 0;
};

/** Per-shard configuration. */
struct ShardOptions {
    /** Inner service config. Its queue_capacity is overridden to
     *  admission_capacity: the gate owns admission, and anything it
     *  admits must never bounce off the inner queue. */
    ServiceOptions service;
    PlacementOptions placement;
    /** Declared tenants; weights scale their share of
     *  admission_capacity. Undeclared tenants weigh 1.0. */
    std::vector<TenantWeight> tenants;
    /** In-flight requests the gate admits at most (the shard's
     *  backpressure bound, replacing the inner queue bound). */
    std::size_t admission_capacity = 64;
};

/**
 * One rack: a DiePool it owns, the SolveService driving it, the
 * placement policy rebalancing it at round boundaries, and the
 * weighted-fair admission gate in front. submit() may be called from
 * any thread.
 */
class Shard
{
  public:
    Shard(std::size_t dies, analog::AnalogSolverOptions base = {},
          ShardOptions opts = {},
          analog::DieHealthPolicy health_policy = {});
    ~Shard(); ///< stop()

    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    /**
     * Gate + forward. Rejections: RejectedQuota when the tenant is
     * at its weighted in-flight quota, RejectedQueueFull when the
     * shard is at admission_capacity, RejectedShutdown after stop();
     * malformed requests fall through to the inner service's
     * validation (so its rejected_invalid counter stays the single
     * source of truth).
     */
    std::future<SolveResponse> submit(SolveRequest req);

    void drain();
    void stop();
    void pause();
    void resume();

    /** Inner service snapshot plus the gate's own rejection
     *  counters folded in (the inner service never sees what the
     *  gate bounced). */
    ServiceMetrics metrics() const;
    PlacementStats placementStats() const { return placement_.stats(); }
    std::vector<PatternHeat> heatMap() const
    {
        return placement_.heatMap(pool_);
    }
    /** Tenants in first-seen order (declared ones first). */
    std::vector<TenantStats> tenantStats() const;
    std::vector<std::string> drainPlacementEvents()
    {
        return placement_.drainEvents();
    }

    analog::DiePool &pool() { return pool_; }
    const analog::DiePool &pool() const { return pool_; }
    SolveService &service() { return *service_; }

  private:
    struct Tenant {
        double weight = 1.0;
        std::size_t submitted = 0;
        std::size_t admitted = 0;
        std::size_t rejected_quota = 0;
        std::size_t completed = 0;
        std::size_t in_flight = 0;
    };

    /** In-flight quota of a tenant under the current population:
     *  max(1, floor(capacity * weight / total_weight)). */
    std::size_t quotaOf(const Tenant &t) const;
    Tenant &tenantSlot(const std::string &name);
    void onComplete(const SolveRequest &req, const SolveResponse &r);

    ShardOptions opts_;
    analog::DiePool pool_;
    PlacementPolicy placement_;
    std::unique_ptr<SolveService> service_;

    mutable std::mutex gate_mu_;
    bool accepting_ = true;
    std::size_t in_flight_ = 0;
    std::size_t gate_rejected_full_ = 0;
    std::size_t gate_rejected_quota_ = 0;
    std::size_t gate_rejected_shutdown_ = 0;
    double total_weight_ = 0.0;
    std::vector<std::string> tenant_order_; ///< first-seen order
    std::unordered_map<std::string, Tenant> tenants_;
};

/** Per-rack slice of a fleet metrics snapshot. */
struct ShardSnapshot {
    std::size_t rack = 0;
    ServiceMetrics service;
    PlacementStats placement;
    std::vector<PatternHeat> heat;
    std::vector<TenantStats> tenants;
};

/** Fleet-wide rollup plus the per-rack slices it was built from. */
struct FleetMetrics {
    std::vector<ShardSnapshot> shards;

    // Rollups across racks.
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t fallbacks = 0;
    /** Lane rollups: mutually exclusive per Ok answer, so across the
     *  fleet lane_analog + lane_refined + lane_precond + lane_digital
     *  == ok (the per-rack ServiceCounters invariant, summed). */
    std::size_t lane_analog = 0;
    std::size_t lane_refined = 0;
    std::size_t lane_precond = 0;
    std::size_t lane_digital = 0;
    std::size_t krylov_iterations = 0;
    std::size_t precond_applies = 0;
    std::size_t rejected_full = 0;
    std::size_t rejected_quota = 0;
    std::size_t placements = 0;
    std::size_t replications = 0;
    std::size_t migrations = 0;
    std::size_t sheds = 0;
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t affinity_hits = 0;
    std::size_t affinity_misses = 0;
    std::size_t config_bytes = 0;
    /** Seconds the fleet's dies spent integrating (summed across
     *  racks and dies). */
    double integrate_seconds = 0.0;
    /** Die-seconds of wall time: each rack's service wall clock
     *  times its die count — the occupancy denominator. */
    double die_wall_seconds = 0.0;

    double cacheHitRatio() const;
    double affinityHitRatio() const;
    /** Fleet-wide mean die duty cycle — the headline pipelining
     *  metric rolled up across racks (0 when nothing ran). */
    double occupancy() const;
};

/** Fleet sizing and shared per-shard config. */
struct FleetOptions {
    std::size_t racks = 1;
    std::size_t dies_per_rack = 1;
    /** Virtual points per rack on the routing ring. */
    std::size_t vnodes = 64;
    ShardOptions shard; ///< applied to every rack
};

/**
 * The fleet front door: owns the racks and the routing ring.
 * submit() hashes the request's sparsity pattern, asks the ring for
 * the owning rack, and hands the request to that shard's gate. With
 * racks=1 the ring is a constant function and the fleet degenerates
 * to a single Shard.
 */
class ShardedSolveService
{
  public:
    ShardedSolveService(analog::AnalogSolverOptions base = {},
                        FleetOptions opts = {},
                        analog::DieHealthPolicy health_policy = {});

    ShardedSolveService(const ShardedSolveService &) = delete;
    ShardedSolveService &operator=(const ShardedSolveService &) =
        delete;

    std::future<SolveResponse> submit(SolveRequest req);

    /** The rack a pattern hash routes to — pure, exposed so tests
     *  and tools can predict placement. */
    std::size_t rackOf(std::uint64_t pattern_hash) const
    {
        return ring_.owner(pattern_hash);
    }

    std::size_t racks() const { return shards_.size(); }
    Shard &shard(std::size_t rack) { return *shards_[rack]; }
    const Shard &shard(std::size_t rack) const
    {
        return *shards_[rack];
    }

    void drain();
    void stop();
    void pause();
    void resume();

    FleetMetrics metrics() const;

  private:
    ConsistentHashRing ring_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace aa::service

#endif // AA_SERVICE_SHARD_HH
