/**
 * @file
 * Deterministic fault injection for the accelerator model.
 *
 * The paper's exception story (Section III-B) covers the *expected*
 * analog failure — range overflow — but a deployed pool of dies also
 * sees the nonidealities real analog arrays degrade through: stuck
 * integrators, VGA gain drift, ADC saturation, lost calibration,
 * corrupted configuration writes, and outright die death. This layer
 * makes every one of those injectable at a precise, reproducible
 * point in a solve.
 *
 * Determinism contract: a FaultPlan is a pure function of its seed
 * and rates. The FaultInjector fires events on *die-local operation
 * counters* (execStart windows, config value writes) — never on wall
 * clock — so the same plan against the same request trace produces
 * the same failure chain at any host thread count, and a chaos test
 * can assert bit-identical failure handling run over run.
 *
 * Cost when disabled: production code holds a null injector pointer
 * and pays one pointer test per hook site; no fault code is reached.
 *
 * Threading: the mutating hooks (onExecWindow, onValueWrite, ...)
 * are called only from the thread driving the attached die — the
 * same single-owner rule every die already obeys. The fired-record
 * log is mutex-guarded so metrics threads may read it concurrently.
 */

#ifndef AA_FAULT_FAULT_HH
#define AA_FAULT_FAULT_HH

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace aa::fault {

/** The injectable failure modes. */
enum class FaultKind {
    StuckIntegrator,  ///< an integrator's readout pinned at a rail
    GainDrift,        ///< multiplicative error on VGA gain writes
    AdcSaturation,    ///< one ADC clips at a fraction of full scale
    CalibrationLoss,  ///< trims lost: offset on reads until re-init
    ConfigCorruption, ///< one config write lands with a flipped bit
    DieDeath,         ///< the die goes dark; every command throws
};

/** Stable short name (failure chains, logs, test diffs). */
const char *name(FaultKind kind);

/**
 * One scheduled fault. `at_exec` counts execStart windows on the die
 * (0 = the first run after attach); timed faults stay active for
 * `duration` windows (0 = forever). `unit` selects the victim
 * resource by `unit % resource_count` at the hook site; `magnitude`
 * is kind-specific (stuck level, drift factor, clip level, offset).
 */
struct FaultEvent {
    FaultKind kind = FaultKind::DieDeath;
    std::size_t at_exec = 0;
    std::size_t duration = 1;
    std::size_t unit = 0;
    double magnitude = 0.0;
};

/** Evidence that an event armed (the "faults seen" log). */
struct FaultRecord {
    FaultKind kind;
    std::size_t exec_index; ///< window in which the event armed
    std::size_t unit;
    double magnitude;
};

/** Per-kind probability that a window arms one event of that kind. */
struct FaultRates {
    double stuck_integrator = 0.0;
    double gain_drift = 0.0;
    double adc_saturation = 0.0;
    double calibration_loss = 0.0;
    double config_corruption = 0.0;
    double die_death = 0.0;
};

/**
 * A deterministic fault schedule for one die. Build explicitly via
 * add() for targeted tests, or sample() for seeded chaos sweeps.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Append one event (kept sorted by at_exec internally). */
    FaultPlan &add(FaultEvent event);

    /**
     * Sample a plan: for each exec window in [0, horizon) and each
     * kind, arm an event with the kind's probability; unit, timed
     * duration, and magnitude are drawn from the same stream. The
     * result depends only on (seed, rates, horizon).
     */
    static FaultPlan sample(std::uint64_t seed, const FaultRates &rates,
                            std::size_t horizon_execs);

    const std::vector<FaultEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }

  private:
    std::vector<FaultEvent> events_;
};

/** Thrown when a command reaches a die that has died. */
class DieDeadError : public std::runtime_error
{
  public:
    DieDeadError() : std::runtime_error("die dead: link dark") {}
};

/**
 * The live injector attached to one die (chip + driver). Counts the
 * die's operations, arms the plan's events at their trigger points,
 * and transforms values at the hook sites while faults are active.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan);

    // --- device-side hooks (called by chip::Chip) -----------------
    /**
     * A new execStart window begins: arm events scheduled for this
     * window, expire timed faults, and throw DieDeadError if a death
     * has armed.
     */
    void onExecWindow();

    /** Transform one config value write (DAC level, initial
     *  condition): flips a mantissa bit while a corruption is
     *  pending. Counts the write either way. */
    double onValueWrite(double value);

    /** Transform one VGA gain write: corruption plus drift. */
    double onGainWrite(double gain);

    /**
     * Transform one readout sample from ADC `ordinal` of `count`:
     * stuck pin, clip, or calibration offset, whichever is active
     * and owns the unit.
     */
    double onReadout(std::size_t ordinal, std::size_t count,
                     double value) const;

    /** Calibration ran: clears an active CalibrationLoss. */
    void onInit();

    // --- host-side hooks (called by isa::AcceleratorDriver) -------
    bool dead() const { return dead_; }
    /** Throw DieDeadError when the die has died. */
    void checkAlive() const;

    // --- observability (any thread) -------------------------------
    std::vector<FaultRecord> fired() const;
    std::size_t firedCount() const;
    /** Compact "kind@exec#unit" chain, one token per armed event. */
    std::string chainString() const;

  private:
    struct Active {
        FaultEvent event;
        std::size_t expires_at; ///< first window it is inactive
    };

    bool activeOf(FaultKind kind, const Active *&out) const;
    void record(const FaultEvent &event);

    std::vector<FaultEvent> schedule_; ///< sorted by at_exec
    std::size_t next_event_ = 0;
    std::vector<Active> active_;
    std::size_t exec_index_ = 0;   ///< windows begun so far
    std::size_t write_index_ = 0;  ///< config value writes seen
    bool corrupt_pending_ = false; ///< next write gets the bit flip
    std::size_t corrupt_unit_ = 0;
    bool decalibrated_ = false;
    double decal_offset_ = 0.0;
    bool dead_ = false;

    mutable std::mutex record_mu_; ///< guards fired_ only
    std::vector<FaultRecord> fired_;
};

} // namespace aa::fault

#endif // AA_FAULT_FAULT_HH
