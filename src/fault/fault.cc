#include "aa/fault/fault.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "aa/common/logging.hh"
#include "aa/common/rng.hh"

namespace aa::fault {

const char *
name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::StuckIntegrator:
        return "stuck-integrator";
      case FaultKind::GainDrift:
        return "gain-drift";
      case FaultKind::AdcSaturation:
        return "adc-saturation";
      case FaultKind::CalibrationLoss:
        return "calibration-loss";
      case FaultKind::ConfigCorruption:
        return "config-corruption";
      case FaultKind::DieDeath:
        return "die-death";
    }
    return "unknown-fault";
}

FaultPlan &
FaultPlan::add(FaultEvent event)
{
    events_.push_back(event);
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent &x, const FaultEvent &y) {
                         return x.at_exec < y.at_exec;
                     });
    return *this;
}

FaultPlan
FaultPlan::sample(std::uint64_t seed, const FaultRates &rates,
                  std::size_t horizon_execs)
{
    FaultPlan plan;
    Rng rng(seed ^ 0x4641554c54ull); // "FAULT"
    struct KindRate {
        FaultKind kind;
        double rate;
    };
    const KindRate table[] = {
        {FaultKind::StuckIntegrator, rates.stuck_integrator},
        {FaultKind::GainDrift, rates.gain_drift},
        {FaultKind::AdcSaturation, rates.adc_saturation},
        {FaultKind::CalibrationLoss, rates.calibration_loss},
        {FaultKind::ConfigCorruption, rates.config_corruption},
        {FaultKind::DieDeath, rates.die_death},
    };
    for (std::size_t w = 0; w < horizon_execs; ++w) {
        for (const KindRate &kr : table) {
            // Draw the event parameters unconditionally so the
            // stream position (and hence every later event) does not
            // depend on which probabilities fired.
            double p = rng.uniform(0.0, 1.0);
            auto unit = static_cast<std::size_t>(
                rng.uniformInt(0, 1023));
            auto dur = static_cast<std::size_t>(
                rng.uniformInt(1, 4));
            double mag = rng.uniform(0.0, 1.0);
            if (p >= kr.rate || kr.rate <= 0.0)
                continue;
            FaultEvent e;
            e.kind = kr.kind;
            e.at_exec = w;
            e.unit = unit;
            switch (kr.kind) {
              case FaultKind::StuckIntegrator:
                e.duration = dur;
                e.magnitude = 2.0 * mag - 1.0; // stuck level in [-1,1]
                break;
              case FaultKind::GainDrift:
                e.duration = dur;
                // +-20% multiplicative drift, never exactly zero.
                e.magnitude = 0.8 + 0.4 * mag;
                break;
              case FaultKind::AdcSaturation:
                e.duration = dur;
                e.magnitude = 0.05 + 0.4 * mag; // clip level
                break;
              case FaultKind::CalibrationLoss:
                e.duration = 0; // until re-init
                e.magnitude = 0.05 + 0.2 * mag; // read offset
                break;
              case FaultKind::ConfigCorruption:
                e.duration = 1;
                e.magnitude = mag;
                break;
              case FaultKind::DieDeath:
                e.duration = 0;
                e.magnitude = 0.0;
                break;
            }
            plan.add(e);
        }
    }
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : schedule_(plan.events())
{}

void
FaultInjector::record(const FaultEvent &event)
{
    std::lock_guard<std::mutex> lock(record_mu_);
    fired_.push_back(
        {event.kind, exec_index_, event.unit, event.magnitude});
}

void
FaultInjector::onExecWindow()
{
    // Expire timed faults first: an event armed at window w with
    // duration d covers windows [w, w + d).
    active_.erase(
        std::remove_if(active_.begin(), active_.end(),
                       [&](const Active &a) {
                           return a.expires_at != 0 &&
                                  exec_index_ >= a.expires_at;
                       }),
        active_.end());

    while (next_event_ < schedule_.size() &&
           schedule_[next_event_].at_exec <= exec_index_) {
        const FaultEvent &e = schedule_[next_event_++];
        record(e);
        switch (e.kind) {
          case FaultKind::DieDeath:
            dead_ = true;
            break;
          case FaultKind::ConfigCorruption:
            corrupt_pending_ = true;
            corrupt_unit_ = e.unit;
            break;
          case FaultKind::CalibrationLoss:
            decalibrated_ = true;
            decal_offset_ = e.magnitude;
            break;
          default: {
            Active a;
            a.event = e;
            a.expires_at =
                e.duration ? exec_index_ + e.duration : 0;
            active_.push_back(a);
            break;
          }
        }
    }
    ++exec_index_;
    if (dead_)
        throw DieDeadError();
}

bool
FaultInjector::activeOf(FaultKind kind, const Active *&out) const
{
    for (const Active &a : active_) {
        if (a.event.kind == kind) {
            out = &a;
            return true;
        }
    }
    return false;
}

double
FaultInjector::onValueWrite(double value)
{
    ++write_index_;
    if (!corrupt_pending_)
        return value;
    corrupt_pending_ = false;
    // One transient bit flip in the shipped f32 payload: the host's
    // shadow register still believes the intended value, so simply
    // re-binding the same parameter is suppressed as a no-op — only
    // a shadow reset (or rewriting a different value) repairs it.
    auto bits = std::bit_cast<std::uint32_t>(
        static_cast<float>(value));
    bits ^= 1u << (16 + corrupt_unit_ % 6); // high mantissa bits
    float corrupted = std::bit_cast<float>(bits);
    debugLog("fault: config write corrupted ", value, " -> ",
             corrupted);
    return corrupted;
}

double
FaultInjector::onGainWrite(double gain)
{
    double v = onValueWrite(gain);
    const Active *a = nullptr;
    if (activeOf(FaultKind::GainDrift, a))
        v *= a->event.magnitude;
    return v;
}

double
FaultInjector::onReadout(std::size_t ordinal, std::size_t count,
                         double value) const
{
    if (count == 0)
        return value;
    const Active *a = nullptr;
    if (activeOf(FaultKind::StuckIntegrator, a) &&
        a->event.unit % count == ordinal)
        return a->event.magnitude;
    if (activeOf(FaultKind::AdcSaturation, a) &&
        a->event.unit % count == ordinal)
        value = std::clamp(value, -a->event.magnitude,
                           a->event.magnitude);
    if (decalibrated_)
        value += decal_offset_;
    return value;
}

void
FaultInjector::onInit()
{
    decalibrated_ = false;
    decal_offset_ = 0.0;
}

void
FaultInjector::checkAlive() const
{
    if (dead_)
        throw DieDeadError();
}

std::vector<FaultRecord>
FaultInjector::fired() const
{
    std::lock_guard<std::mutex> lock(record_mu_);
    return fired_;
}

std::size_t
FaultInjector::firedCount() const
{
    std::lock_guard<std::mutex> lock(record_mu_);
    return fired_.size();
}

std::string
FaultInjector::chainString() const
{
    std::vector<FaultRecord> records = fired();
    std::ostringstream os;
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (i)
            os << ' ';
        os << name(records[i].kind) << '@' << records[i].exec_index
           << '#' << records[i].unit;
    }
    return os.str();
}

} // namespace aa::fault
