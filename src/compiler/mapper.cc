#include "aa/compiler/mapper.hh"

#include "aa/common/logging.hh"

namespace aa::compiler {

SleMapping::SleMapping(const ScaledSystem &sys, const chip::Chip &chip,
                       bool expect_spd)
    : structure_(std::make_shared<const CompiledStructure>(sys.a, chip)),
      binding_(*structure_, sys,
               estimateConvergenceRate(sys.a, expect_spd))
{}

SleMapping::SleMapping(
    std::shared_ptr<const CompiledStructure> structure,
    const ScaledSystem &sys, bool expect_spd)
    : structure_(std::move(structure)),
      binding_(*structure_, sys,
               estimateConvergenceRate(sys.a, expect_spd))
{
    fatalIf(!structure_, "SleMapping: null structure");
}

void
SleMapping::configure(isa::AcceleratorDriver &driver) const
{
    structure_->configureStructure(driver);
    binding_.apply(*structure_, driver);
}

void
SleMapping::updateBiases(isa::AcceleratorDriver &driver,
                         const la::Vector &scaled_b) const
{
    fatalIf(scaled_b.size() != numVars(),
            "updateBiases: size mismatch");
    for (std::size_t i = 0; i < numVars(); ++i)
        driver.setDacConstant(structure_->dacOf(i), scaled_b[i]);
}

void
SleMapping::updateInitialState(isa::AcceleratorDriver &driver,
                               const la::Vector &scaled_u0) const
{
    fatalIf(scaled_u0.size() != numVars(),
            "updateInitialState: size mismatch");
    for (std::size_t i = 0; i < numVars(); ++i)
        driver.setIntInitial(structure_->integratorOf(i),
                             scaled_u0[i]);
}

la::Vector
SleMapping::readSolution(isa::AcceleratorDriver &driver,
                         std::size_t samples) const
{
    return structure_->readSolution(driver, samples);
}

double
SleMapping::recommendedTimeout(const circuit::AnalogSpec &spec) const
{
    return binding_.recommendedTimeout(spec);
}

} // namespace aa::compiler
