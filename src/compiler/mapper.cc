#include "aa/compiler/mapper.hh"

#include <cmath>
#include <deque>

#include "aa/common/logging.hh"
#include "aa/la/direct.hh"
#include "aa/la/eigen.hh"

namespace aa::compiler {

using chip::BlockId;
using chip::PortRef;

bool
ResourceDemand::fitsOn(const chip::ChipGeometry &g) const
{
    return integrators <= g.integrators() &&
           multipliers <= g.multipliers() &&
           fanout_blocks <= g.fanouts() && dacs <= g.dacs() &&
           adcs <= g.adcs() && luts <= g.luts();
}

ResourceDemand
demandOf(const la::DenseMatrix &a, const la::Vector &b,
         std::size_t fanout_copies)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "demandOf: dimension mismatch");
    fatalIf(fanout_copies < 2, "demandOf: fanout must copy >= 2");

    ResourceDemand d;
    std::size_t n = b.size();
    d.integrators = n;
    d.adcs = n;
    // One DAC per row: Algorithm 2 re-runs the same mapping with a
    // fresh residual b whose zero pattern differs, so every row keeps
    // a bias source even when its initial b_i is zero.
    d.dacs = n;

    for (std::size_t i = 0; i < n; ++i) {
        std::size_t col_nnz = 0;
        for (std::size_t j = 0; j < n; ++j) {
            if (a(j, i) != 0.0) {
                ++col_nnz;
                ++d.multipliers;
            }
        }
        // u_i feeds its column's multipliers plus one ADC leaf.
        std::size_t leaves = col_nnz + 1;
        if (leaves > 1) {
            d.fanout_blocks +=
                (leaves - 2) / (fanout_copies - 1) + 1;
        }
    }
    return d;
}

chip::ChipGeometry
geometryFor(const ResourceDemand &demand)
{
    chip::ChipGeometry g; // prototype ratios
    auto ceil_div = [](std::size_t a, std::size_t b) {
        return (a + b - 1) / b;
    };
    std::size_t mb = 1;
    mb = std::max(mb, ceil_div(demand.integrators,
                               g.integrators_per_mb));
    mb = std::max(mb, ceil_div(demand.multipliers,
                               g.multipliers_per_mb));
    mb = std::max(mb,
                  ceil_div(demand.fanout_blocks, g.fanouts_per_mb));
    mb = std::max(mb, demand.dacs * g.mb_per_shared);
    mb = std::max(mb, demand.adcs * g.mb_per_shared);
    mb = std::max(mb, demand.luts * g.mb_per_shared);
    g.macroblocks = mb;
    return g;
}

SleMapping::SleMapping(const ScaledSystem &sys, const chip::Chip &chip,
                       bool expect_spd)
    : n(sys.b.size()), scaling(sys.plan), a_scaled(sys.a),
      b_scaled(sys.b), u0_scaled(sys.u0)
{
    const auto &geom = chip.config().geometry;
    const auto &spec = chip.config().spec;
    used = demandOf(a_scaled, b_scaled, geom.fanout_copies);
    fatalIf(!used.fitsOn(geom),
            "SleMapping: problem needs ", used.integrators,
            " integrators / ", used.multipliers, " multipliers / ",
            used.fanout_blocks, " fanouts / ", used.adcs,
            " ADCs; chip has ", geom.integrators(), " / ",
            geom.multipliers(), " / ", geom.fanouts(), " / ",
            geom.adcs());
    fatalIf(a_scaled.maxAbs() > spec.max_gain,
            "SleMapping: scaled coefficient ", a_scaled.maxAbs(),
            " still exceeds the gain range; scaleSystem first");

    var_integrator.resize(n);
    var_adc.resize(n);
    var_dac.resize(n);
    const auto &net = chip.netlist();

    std::size_t next_mul = 0;
    std::size_t next_fan = 0;
    for (std::size_t i = 0; i < n; ++i) {
        var_integrator[i] = chip.integrators()[i];
        var_adc[i] = chip.adcs()[i];
        var_dac[i] = chip.dacs()[i];
    }

    for (std::size_t i = 0; i < n; ++i) {
        // Consumers of u_i: the multipliers of column i, then the
        // readout ADC.
        std::vector<PortRef> consumer_inputs;
        for (std::size_t j = 0; j < n; ++j) {
            if (a_scaled(j, i) == 0.0)
                continue;
            panicIf(next_mul >= chip.multipliers().size(),
                    "mapper: multiplier pool exhausted");
            BlockId m = chip.multipliers()[next_mul++];
            gains.emplace_back(m, -a_scaled(j, i));
            consumer_inputs.push_back(net.in(m, 0));
            conns.emplace_back(net.out(m, 0),
                               net.in(var_integrator[j], 0));
        }
        consumer_inputs.push_back(net.in(var_adc[i], 0));

        // Grow a fanout tree from the integrator output until there
        // are enough copies; then hand the leaves to the consumers.
        std::deque<PortRef> available;
        available.push_back(net.out(var_integrator[i], 0));
        while (available.size() < consumer_inputs.size()) {
            panicIf(next_fan >= chip.fanouts().size(),
                    "mapper: fanout pool exhausted");
            BlockId f = chip.fanouts()[next_fan++];
            PortRef feed = available.front();
            available.pop_front();
            conns.emplace_back(feed, net.in(f, 0));
            for (std::size_t o = 0; o < net.outputCount(f); ++o)
                available.push_back(net.out(f, o));
        }
        for (std::size_t k = 0; k < consumer_inputs.size(); ++k) {
            conns.emplace_back(available[k], consumer_inputs[k]);
        }

        // Bias source.
        conns.emplace_back(net.out(var_dac[i], 0),
                           net.in(var_integrator[i], 0));
    }

    // Convergence-rate estimate for the timeout recommendation.
    if (expect_spd && la::Cholesky::factor(a_scaled).has_value()) {
        lambda_min = la::smallestEigenvalueSpd(a_scaled).value;
    } else {
        if (expect_spd) {
            warn("SleMapping: scaled matrix is not SPD; the gradient "
                 "flow may not converge. Using a diagonal rate bound.");
        }
        double dmin = a_scaled(0, 0);
        for (std::size_t i = 1; i < n; ++i)
            dmin = std::min(dmin, a_scaled(i, i));
        lambda_min = std::max(dmin, 1e-6);
    }
}

void
SleMapping::configure(isa::AcceleratorDriver &driver) const
{
    driver.clearConfig();
    for (std::size_t i = 0; i < n; ++i) {
        driver.setIntInitial(var_integrator[i], u0_scaled[i]);
        driver.setDacConstant(var_dac[i], b_scaled[i]);
    }
    for (const auto &[mul, gain] : gains)
        driver.setMulGain(mul, gain);
    for (const auto &[from, to] : conns)
        driver.setConn(from, to);

    const auto &cfg = driver.chip().config();
    double timeout_s = recommendedTimeout(cfg.spec);
    auto cycles = static_cast<std::uint32_t>(
        std::ceil(timeout_s * cfg.ctrl_clock_hz));
    driver.setTimeout(std::max<std::uint32_t>(cycles, 1));
    driver.cfgCommit();
}

void
SleMapping::updateBiases(isa::AcceleratorDriver &driver,
                         const la::Vector &scaled_b) const
{
    fatalIf(scaled_b.size() != n, "updateBiases: size mismatch");
    for (std::size_t i = 0; i < n; ++i)
        driver.setDacConstant(var_dac[i], scaled_b[i]);
}

void
SleMapping::updateInitialState(isa::AcceleratorDriver &driver,
                               const la::Vector &scaled_u0) const
{
    fatalIf(scaled_u0.size() != n,
            "updateInitialState: size mismatch");
    for (std::size_t i = 0; i < n; ++i)
        driver.setIntInitial(var_integrator[i], scaled_u0[i]);
}

la::Vector
SleMapping::readSolution(isa::AcceleratorDriver &driver,
                         std::size_t samples) const
{
    la::Vector u_hat(n);
    for (std::size_t i = 0; i < n; ++i)
        u_hat[i] = driver.analogAvg(var_adc[i], samples);
    return u_hat;
}

double
SleMapping::recommendedTimeout(const circuit::AnalogSpec &spec) const
{
    // Error decays as exp(-rate * lambda_min * t); budget enough time
    // to pull a full-scale error under half an ADC LSB, with margin.
    double initial_err = 2.0 * spec.linear_range;
    double target =
        spec.linear_range / static_cast<double>(1 << spec.adc_bits);
    double decades = std::log(initial_err / (0.5 * target));
    double t =
        decades / (spec.integratorRate() * std::max(lambda_min, 1e-9));
    return 1.5 * t;
}

chip::BlockId
SleMapping::integratorOf(std::size_t i) const
{
    fatalIf(i >= n, "integratorOf: out of range");
    return var_integrator[i];
}

chip::BlockId
SleMapping::adcOf(std::size_t i) const
{
    fatalIf(i >= n, "adcOf: out of range");
    return var_adc[i];
}

} // namespace aa::compiler
