#include "aa/compiler/program.hh"

#include <cmath>
#include <deque>

#include "aa/common/logging.hh"
#include "aa/la/direct.hh"
#include "aa/la/eigen.hh"

namespace aa::compiler {

using chip::BlockId;
using chip::PortRef;

bool
ResourceDemand::fitsOn(const chip::ChipGeometry &g) const
{
    return integrators <= g.integrators() &&
           multipliers <= g.multipliers() &&
           fanout_blocks <= g.fanouts() && dacs <= g.dacs() &&
           adcs <= g.adcs() && luts <= g.luts();
}

ResourceDemand
demandOf(const la::DenseMatrix &a, const la::Vector &b,
         std::size_t fanout_copies)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "demandOf: dimension mismatch");
    fatalIf(fanout_copies < 2, "demandOf: fanout must copy >= 2");

    ResourceDemand d;
    std::size_t n = b.size();
    d.integrators = n;
    d.adcs = n;
    // One DAC per row: Algorithm 2 re-runs the same mapping with a
    // fresh residual b whose zero pattern differs, so every row keeps
    // a bias source even when its initial b_i is zero.
    d.dacs = n;

    for (std::size_t i = 0; i < n; ++i) {
        std::size_t col_nnz = 0;
        for (std::size_t j = 0; j < n; ++j) {
            if (a(j, i) != 0.0) {
                ++col_nnz;
                ++d.multipliers;
            }
        }
        // u_i feeds its column's multipliers plus one ADC leaf.
        std::size_t leaves = col_nnz + 1;
        if (leaves > 1) {
            d.fanout_blocks +=
                (leaves - 2) / (fanout_copies - 1) + 1;
        }
    }
    return d;
}

chip::ChipGeometry
geometryFor(const ResourceDemand &demand)
{
    chip::ChipGeometry g; // prototype ratios
    auto ceil_div = [](std::size_t a, std::size_t b) {
        return (a + b - 1) / b;
    };
    std::size_t mb = 1;
    mb = std::max(mb, ceil_div(demand.integrators,
                               g.integrators_per_mb));
    mb = std::max(mb, ceil_div(demand.multipliers,
                               g.multipliers_per_mb));
    mb = std::max(mb,
                  ceil_div(demand.fanout_blocks, g.fanouts_per_mb));
    mb = std::max(mb, demand.dacs * g.mb_per_shared);
    mb = std::max(mb, demand.adcs * g.mb_per_shared);
    mb = std::max(mb, demand.luts * g.mb_per_shared);
    g.macroblocks = mb;
    return g;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (int k = 0; k < 8; ++k) {
        h ^= (v >> (8 * k)) & 0xff;
        h *= kFnvPrime;
    }
}

} // namespace

std::uint64_t
sparsityHash(const la::DenseMatrix &a)
{
    std::uint64_t h = kFnvOffset;
    fnvMix(h, a.rows());
    fnvMix(h, a.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            if (a(r, c) != 0.0)
                fnvMix(h, r * a.cols() + c + 1);
    return h;
}

std::uint64_t
geometryKeyOf(const chip::ChipGeometry &g)
{
    std::uint64_t h = kFnvOffset;
    fnvMix(h, g.macroblocks);
    fnvMix(h, g.integrators_per_mb);
    fnvMix(h, g.multipliers_per_mb);
    fnvMix(h, g.fanouts_per_mb);
    fnvMix(h, g.fanout_copies);
    fnvMix(h, g.mb_per_shared);
    return h;
}

double
estimateConvergenceRate(const la::DenseMatrix &a_scaled,
                        bool expect_spd)
{
    if (expect_spd && la::Cholesky::factor(a_scaled).has_value())
        return la::smallestEigenvalueSpd(a_scaled).value;
    if (expect_spd && a_scaled.isSymmetric()) {
        // Symmetric but indefinite is a genuine surprise. Plain
        // asymmetry is not: the preconditioned Krylov lane runs
        // nonsymmetric systems through the accelerator on purpose
        // and owns their convergence story.
        warn("SleMapping: scaled matrix is not SPD; the gradient "
             "flow may not converge. Using a diagonal rate bound.");
    }
    double dmin = a_scaled(0, 0);
    for (std::size_t i = 1; i < a_scaled.rows(); ++i)
        dmin = std::min(dmin, a_scaled(i, i));
    return std::max(dmin, 1e-6);
}

CompiledStructure::CompiledStructure(const la::DenseMatrix &a,
                                     const chip::Chip &chip)
    : n(a.rows())
{
    fatalIf(a.rows() != a.cols(),
            "CompiledStructure: matrix must be square");
    const auto &geom = chip.config().geometry;
    pattern_hash = sparsityHash(a);
    geometry_key = geometryKeyOf(geom);
    max_gain = chip.config().spec.max_gain;

    // Demand counts positions only, so any b of matching size works.
    used = demandOf(a, la::Vector(n), geom.fanout_copies);
    fatalIf(!used.fitsOn(geom),
            "SleMapping: problem needs ", used.integrators,
            " integrators / ", used.multipliers, " multipliers / ",
            used.fanout_blocks, " fanouts / ", used.adcs,
            " ADCs; chip has ", geom.integrators(), " / ",
            geom.multipliers(), " / ", geom.fanouts(), " / ",
            geom.adcs());

    var_integrator.resize(n);
    var_adc.resize(n);
    var_dac.resize(n);
    const auto &net = chip.netlist();

    std::size_t next_mul = 0;
    std::size_t next_fan = 0;
    for (std::size_t i = 0; i < n; ++i) {
        var_integrator[i] = chip.integrators()[i];
        var_adc[i] = chip.adcs()[i];
        var_dac[i] = chip.dacs()[i];
    }

    for (std::size_t i = 0; i < n; ++i) {
        // Consumers of u_i: the multipliers of column i, then the
        // readout ADC.
        std::vector<PortRef> consumer_inputs;
        for (std::size_t j = 0; j < n; ++j) {
            if (a(j, i) == 0.0)
                continue;
            panicIf(next_mul >= chip.multipliers().size(),
                    "mapper: multiplier pool exhausted");
            BlockId m = chip.multipliers()[next_mul++];
            mul_unit.push_back(m);
            mul_row.push_back(j);
            mul_col.push_back(i);
            consumer_inputs.push_back(net.in(m, 0));
            conns.emplace_back(net.out(m, 0),
                               net.in(var_integrator[j], 0));
        }
        consumer_inputs.push_back(net.in(var_adc[i], 0));

        // Grow a fanout tree from the integrator output until there
        // are enough copies; then hand the leaves to the consumers.
        std::deque<PortRef> available;
        available.push_back(net.out(var_integrator[i], 0));
        while (available.size() < consumer_inputs.size()) {
            panicIf(next_fan >= chip.fanouts().size(),
                    "mapper: fanout pool exhausted");
            BlockId f = chip.fanouts()[next_fan++];
            PortRef feed = available.front();
            available.pop_front();
            conns.emplace_back(feed, net.in(f, 0));
            for (std::size_t o = 0; o < net.outputCount(f); ++o)
                available.push_back(net.out(f, o));
        }
        for (std::size_t k = 0; k < consumer_inputs.size(); ++k) {
            conns.emplace_back(available[k], consumer_inputs[k]);
        }

        // Bias source.
        conns.emplace_back(net.out(var_dac[i], 0),
                           net.in(var_integrator[i], 0));
    }
}

void
CompiledStructure::configureStructure(
    isa::AcceleratorDriver &driver) const
{
    driver.clearConfig();
    for (const auto &[from, to] : conns)
        driver.setConn(from, to);
}

la::Vector
CompiledStructure::readSolution(isa::AcceleratorDriver &driver,
                                std::size_t samples) const
{
    la::Vector u_hat(n);
    for (std::size_t i = 0; i < n; ++i)
        u_hat[i] = driver.analogAvg(var_adc[i], samples);
    return u_hat;
}

chip::BlockId
CompiledStructure::integratorOf(std::size_t i) const
{
    fatalIf(i >= n, "integratorOf: out of range");
    return var_integrator[i];
}

chip::BlockId
CompiledStructure::adcOf(std::size_t i) const
{
    fatalIf(i >= n, "adcOf: out of range");
    return var_adc[i];
}

chip::BlockId
CompiledStructure::dacOf(std::size_t i) const
{
    fatalIf(i >= n, "dacOf: out of range");
    return var_dac[i];
}

ParameterBinding::ParameterBinding(const CompiledStructure &cs,
                                   const ScaledSystem &sys,
                                   double lambda_min_scaled)
    : scaling(sys.plan), b_scaled(sys.b), u0_scaled(sys.u0),
      lambda_min(lambda_min_scaled)
{
    fatalIf(sys.b.size() != cs.numVars() ||
                sys.a.rows() != cs.numVars() ||
                sys.u0.size() != cs.numVars(),
            "ParameterBinding: size mismatch with structure");
    fatalIf(sys.a.maxAbs() > cs.maxGain(),
            "SleMapping: scaled coefficient ", sys.a.maxAbs(),
            " still exceeds the gain range; scaleSystem first");
    gains.resize(cs.numGains());
    for (std::size_t k = 0; k < gains.size(); ++k)
        gains[k] = -sys.a(cs.gainRow(k), cs.gainCol(k));
}

void
ParameterBinding::apply(const CompiledStructure &cs,
                        isa::AcceleratorDriver &driver) const
{
    fatalIf(gains.size() != cs.numGains(),
            "ParameterBinding: bound to a different structure");
    for (std::size_t i = 0; i < cs.numVars(); ++i) {
        driver.setIntInitial(cs.integratorOf(i), u0_scaled[i]);
        driver.setDacConstant(cs.dacOf(i), b_scaled[i]);
    }
    for (std::size_t k = 0; k < gains.size(); ++k)
        driver.setMulGain(cs.mulOf(k), gains[k]);

    const auto &cfg = driver.chip().config();
    double timeout_s = recommendedTimeout(cfg.spec);
    auto cycles = static_cast<std::uint32_t>(
        std::ceil(timeout_s * cfg.ctrl_clock_hz));
    driver.setTimeout(std::max<std::uint32_t>(cycles, 1));
    driver.cfgCommit();
}

double
ParameterBinding::recommendedTimeout(
    const circuit::AnalogSpec &spec) const
{
    // Error decays as exp(-rate * lambda_min * t); budget enough time
    // to pull a full-scale error under half an ADC LSB, with margin.
    double initial_err = 2.0 * spec.linear_range;
    double target =
        spec.linear_range / static_cast<double>(1 << spec.adc_bits);
    double decades = std::log(initial_err / (0.5 * target));
    double t =
        decades / (spec.integratorRate() * std::max(lambda_min, 1e-9));
    return 1.5 * t;
}

ProgramCache::ProgramCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1))
{}

std::size_t
ProgramCache::KeyHash::operator()(const Key &k) const
{
    std::uint64_t h = kFnvOffset;
    fnvMix(h, k.pattern);
    fnvMix(h, k.geometry);
    fnvMix(h, k.n);
    return static_cast<std::size_t>(h);
}

std::shared_ptr<const CompiledStructure>
ProgramCache::fetch(const la::DenseMatrix &a, const chip::Chip &chip)
{
    Key key{sparsityHash(a), geometryKeyOf(chip.config().geometry),
            a.rows()};
    auto it = index.find(key);
    if (it != index.end()) {
        ++stats_.hits;
        lru.splice(lru.begin(), lru, it->second);
        return lru.front().structure;
    }
    ++stats_.misses;
    auto structure = std::make_shared<const CompiledStructure>(a, chip);
    lru.push_front(Entry{key, structure, false});
    index[key] = lru.begin();
    evictIfOver();
    return structure;
}

std::shared_ptr<const CompiledStructure>
ProgramCache::fetch(const la::DenseMatrix &a, const chip::Chip &chip,
                    std::shared_ptr<const CompiledStructure> donor)
{
    Key key{sparsityHash(a), geometryKeyOf(chip.config().geometry),
            a.rows()};
    auto it = index.find(key);
    if (it != index.end()) {
        ++stats_.hits;
        lru.splice(lru.begin(), lru, it->second);
        return lru.front().structure;
    }
    ++stats_.misses;
    if (!donor || donor->patternHash() != key.pattern ||
        donor->geometryKey() != key.geometry ||
        donor->numVars() != key.n)
        donor = std::make_shared<const CompiledStructure>(a, chip);
    lru.push_front(Entry{key, donor, false});
    index[key] = lru.begin();
    evictIfOver();
    return donor;
}

std::shared_ptr<const CompiledStructure>
ProgramCache::lookup(const la::DenseMatrix &a,
                     const chip::Chip &chip) const
{
    Key key{sparsityHash(a), geometryKeyOf(chip.config().geometry),
            a.rows()};
    auto it = index.find(key);
    return it != index.end() ? it->second->structure : nullptr;
}

void
ProgramCache::evictIfOver()
{
    if (lru.size() <= capacity_)
        return;
    // Walk from the cold end; the first unpinned entry goes. A cache
    // full of pins overflows instead of breaking a placement.
    for (auto it = std::prev(lru.end());; --it) {
        if (!it->pinned) {
            index.erase(it->key);
            lru.erase(it);
            ++stats_.evictions;
            return;
        }
        if (it == lru.begin())
            return;
    }
}

void
ProgramCache::install(std::shared_ptr<const CompiledStructure> cs,
                      bool pin)
{
    fatalIf(!cs, "ProgramCache::install: null structure");
    Key key{cs->patternHash(), cs->geometryKey(), cs->numVars()};
    auto it = index.find(key);
    if (it != index.end()) {
        it->second->pinned = pin;
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    ++stats_.installs;
    lru.push_front(Entry{key, std::move(cs), pin});
    index[key] = lru.begin();
    evictIfOver();
}

std::shared_ptr<const CompiledStructure>
ProgramCache::peek(std::uint64_t pattern_hash, std::size_t n) const
{
    for (const Entry &e : lru)
        if (e.key.pattern == pattern_hash && e.key.n == n)
            return e.structure;
    return nullptr;
}

std::size_t
ProgramCache::pin(std::uint64_t pattern_hash, std::size_t n,
                  bool pinned)
{
    std::size_t touched = 0;
    for (Entry &e : lru)
        if (e.key.pattern == pattern_hash && e.key.n == n) {
            e.pinned = pinned;
            ++touched;
        }
    return touched;
}

std::size_t
ProgramCache::erase(std::uint64_t pattern_hash, std::size_t n)
{
    std::size_t removed = 0;
    for (auto it = lru.begin(); it != lru.end();) {
        if (it->key.pattern == pattern_hash && it->key.n == n) {
            index.erase(it->key);
            it = lru.erase(it);
            ++removed;
        } else {
            ++it;
        }
    }
    return removed;
}

bool
ProgramCache::contains(std::uint64_t pattern_hash, std::size_t n) const
{
    for (const Entry &e : lru)
        if (e.key.pattern == pattern_hash && e.key.n == n)
            return true;
    return false;
}

std::vector<CacheKeyView>
ProgramCache::keys() const
{
    std::vector<CacheKeyView> out;
    out.reserve(lru.size());
    for (const Entry &e : lru)
        out.push_back(
            {e.key.pattern, e.key.geometry, e.key.n, e.pinned});
    return out;
}

void
ProgramCache::clear()
{
    lru.clear();
    index.clear();
}

} // namespace aa::compiler
