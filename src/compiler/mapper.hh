/**
 * @file
 * Mapping systems of linear equations onto chip resources.
 *
 * For A u = b (A already scaled into the gain range), each variable i
 * gets an integrator computing du_i/dt = b_i - sum_j a_ij u_j
 * (paper Figure 5): one constant-gain multiplier per nonzero a_ij
 * (gain -a_ij), a DAC for b_i, and a fanout tree that copies u_i to
 * every consumer (the multipliers of column i, plus one ADC leaf for
 * readout). Currents sum by joining at the integrator's input node.
 *
 * The mapper is "a predefined way to convert a system of linear
 * equations under study into an analog accelerator configuration"
 * (Section VII) — no training, no prior knowledge of the solution.
 *
 * SleMapping is the one-shot facade over the split program layer
 * (aa/compiler/program.hh): an immutable CompiledStructure (pattern +
 * geometry -> units and connections) plus a ParameterBinding (scaled
 * values). Hosts that re-run one structure with new values — the
 * solver's retry loop, refinement, implicit stepping — hold the
 * structure and rebind instead of rebuilding a mapping.
 */

#ifndef AA_COMPILER_MAPPER_HH
#define AA_COMPILER_MAPPER_HH

#include <memory>
#include <vector>

#include "aa/chip/chip.hh"
#include "aa/compiler/program.hh"
#include "aa/compiler/scaling.hh"
#include "aa/isa/driver.hh"

namespace aa::compiler {

/**
 * A compiled mapping: which physical unit serves which role, plus
 * everything the host needs to run and read back the problem.
 */
class SleMapping
{
  public:
    /**
     * Map the scaled system onto the chip's units. fatal()s when the
     * chip is too small (use demandOf/geometryFor to size one).
     * The mapping is resource assignment only — nothing is written
     * to the device until configure() is called.
     *
     * `expect_spd` = false skips the positive-definiteness analysis:
     * ODE-dynamics mappings (du/dt = A u + b with the sign kept) are
     * legitimately non-SPD and set their own timeouts.
     */
    SleMapping(const ScaledSystem &sys, const chip::Chip &chip,
               bool expect_spd = true);

    /** Bind new values to an already-compiled (possibly cached)
     *  structure, skipping placement entirely. */
    SleMapping(std::shared_ptr<const CompiledStructure> structure,
               const ScaledSystem &sys, bool expect_spd = true);

    /** Push the whole configuration through the driver (Table I
     *  config instructions), ending with cfgCommit. */
    void configure(isa::AcceleratorDriver &driver) const;

    /** Update only the DAC biases (Algorithm 2 re-runs with a new
     *  residual b without remapping). Caller must cfgCommit after. */
    void updateBiases(isa::AcceleratorDriver &driver,
                      const la::Vector &scaled_b) const;

    /** Update only the integrator initial conditions. */
    void updateInitialState(isa::AcceleratorDriver &driver,
                            const la::Vector &scaled_u0) const;

    /**
     * Read the scaled steady-state solution through the ADCs
     * (averaging `samples` conversions per variable).
     */
    la::Vector readSolution(isa::AcceleratorDriver &driver,
                            std::size_t samples = 4) const;

    /** Recommended analog-time budget: the scaled system's expected
     *  convergence time to ADC precision, with margin. */
    double recommendedTimeout(const circuit::AnalogSpec &spec) const;

    const ScalingPlan &plan() const { return binding_.plan(); }
    std::size_t numVars() const { return structure_->numVars(); }
    const ResourceDemand &demand() const
    {
        return structure_->demand();
    }

    /** Smallest eigenvalue of the scaled A: the gradient flow decays
     *  as exp(-rate * lambdaMin * t), so hosts derive steady-state
     *  thresholds and timeouts from it. */
    double lambdaMin() const { return binding_.lambdaMin(); }

    /** Physical units serving variable i (exposed for tests). */
    chip::BlockId integratorOf(std::size_t i) const
    {
        return structure_->integratorOf(i);
    }
    chip::BlockId adcOf(std::size_t i) const
    {
        return structure_->adcOf(i);
    }

    /** The two halves, for hosts that cache/rebind directly. */
    const CompiledStructure &structure() const { return *structure_; }
    std::shared_ptr<const CompiledStructure> sharedStructure() const
    {
        return structure_;
    }
    const ParameterBinding &binding() const { return binding_; }

  private:
    std::shared_ptr<const CompiledStructure> structure_;
    ParameterBinding binding_;
};

} // namespace aa::compiler

#endif // AA_COMPILER_MAPPER_HH
