/**
 * @file
 * Mapping systems of linear equations onto chip resources.
 *
 * For A u = b (A already scaled into the gain range), each variable i
 * gets an integrator computing du_i/dt = b_i - sum_j a_ij u_j
 * (paper Figure 5): one constant-gain multiplier per nonzero a_ij
 * (gain -a_ij), a DAC for b_i, and a fanout tree that copies u_i to
 * every consumer (the multipliers of column i, plus one ADC leaf for
 * readout). Currents sum by joining at the integrator's input node.
 *
 * The mapper is "a predefined way to convert a system of linear
 * equations under study into an analog accelerator configuration"
 * (Section VII) — no training, no prior knowledge of the solution.
 */

#ifndef AA_COMPILER_MAPPER_HH
#define AA_COMPILER_MAPPER_HH

#include <vector>

#include "aa/chip/chip.hh"
#include "aa/compiler/scaling.hh"
#include "aa/isa/driver.hh"

namespace aa::compiler {

/** Hardware demand of one mapped system. */
struct ResourceDemand {
    std::size_t integrators = 0;
    std::size_t multipliers = 0;
    std::size_t fanout_blocks = 0;
    std::size_t dacs = 0;
    std::size_t adcs = 0;
    std::size_t luts = 0; ///< nonlinear mappings only

    /** True when a chip geometry satisfies this demand. */
    bool fitsOn(const chip::ChipGeometry &g) const;
};

/** Compute the demand of a (scaled) system without mapping it. */
ResourceDemand demandOf(const la::DenseMatrix &a, const la::Vector &b,
                        std::size_t fanout_copies = 2);

/** Smallest prototype-shaped geometry satisfying a demand. */
chip::ChipGeometry geometryFor(const ResourceDemand &demand);

/**
 * A compiled mapping: which physical unit serves which role, plus
 * everything the host needs to run and read back the problem.
 */
class SleMapping
{
  public:
    /**
     * Map the scaled system onto the chip's units. fatal()s when the
     * chip is too small (use demandOf/geometryFor to size one).
     * The mapping is resource assignment only — nothing is written
     * to the device until configure() is called.
     *
     * `expect_spd` = false skips the positive-definiteness analysis:
     * ODE-dynamics mappings (du/dt = A u + b with the sign kept) are
     * legitimately non-SPD and set their own timeouts.
     */
    SleMapping(const ScaledSystem &sys, const chip::Chip &chip,
               bool expect_spd = true);

    /** Push the whole configuration through the driver (Table I
     *  config instructions), ending with cfgCommit. */
    void configure(isa::AcceleratorDriver &driver) const;

    /** Update only the DAC biases (Algorithm 2 re-runs with a new
     *  residual b without remapping). Caller must cfgCommit after. */
    void updateBiases(isa::AcceleratorDriver &driver,
                      const la::Vector &scaled_b) const;

    /** Update only the integrator initial conditions. */
    void updateInitialState(isa::AcceleratorDriver &driver,
                            const la::Vector &scaled_u0) const;

    /**
     * Read the scaled steady-state solution through the ADCs
     * (averaging `samples` conversions per variable).
     */
    la::Vector readSolution(isa::AcceleratorDriver &driver,
                            std::size_t samples = 4) const;

    /** Recommended analog-time budget: the scaled system's expected
     *  convergence time to ADC precision, with margin. */
    double recommendedTimeout(const circuit::AnalogSpec &spec) const;

    const ScalingPlan &plan() const { return scaling; }
    std::size_t numVars() const { return n; }
    const ResourceDemand &demand() const { return used; }

    /** Smallest eigenvalue of the scaled A: the gradient flow decays
     *  as exp(-rate * lambdaMin * t), so hosts derive steady-state
     *  thresholds and timeouts from it. */
    double lambdaMin() const { return lambda_min; }

    /** Physical units serving variable i (exposed for tests). */
    chip::BlockId integratorOf(std::size_t i) const;
    chip::BlockId adcOf(std::size_t i) const;

  private:
    std::size_t n = 0;
    ScalingPlan scaling;
    la::DenseMatrix a_scaled;
    la::Vector b_scaled;
    la::Vector u0_scaled;
    ResourceDemand used;

    std::vector<chip::BlockId> var_integrator;
    std::vector<chip::BlockId> var_adc;
    std::vector<chip::BlockId> var_dac; ///< invalid when b_i == 0

    /** Crossbar connections to program, in order. */
    std::vector<std::pair<chip::PortRef, chip::PortRef>> conns;
    /** (multiplier, gain) assignments. */
    std::vector<std::pair<chip::BlockId, double>> gains;

    double lambda_min = 0.0; ///< of the scaled A (for the timeout)
};

} // namespace aa::compiler

#endif // AA_COMPILER_MAPPER_HH
