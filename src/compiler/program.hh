/**
 * @file
 * The compiled-program layer of the mapper: structure vs values.
 *
 * A solve's chip configuration splits cleanly in two. The *structure*
 * — which units serve which variable, the fanout trees, the crossbar
 * connection list — depends only on the sparsity pattern of A and the
 * chip geometry; scaling (s, sigma) multiplies values but never
 * creates or destroys a nonzero. The *values* — multiplier gains, DAC
 * biases, integrator initial conditions, the timeout — change on
 * every rescale attempt and every refinement pass.
 *
 * CompiledStructure captures the former (immutable, content-hashable,
 * shareable); ParameterBinding the latter (cheap to rebuild and to
 * re-ship, since the driver's shadow registers suppress unchanged
 * writes). ProgramCache memoizes structures by (pattern, n, geometry)
 * so "multiple runs of the same accelerator" (paper Section IV-B:
 * refinement, decomposition, multigrid, implicit stepping) compile
 * once and only rebind.
 */

#ifndef AA_COMPILER_PROGRAM_HH
#define AA_COMPILER_PROGRAM_HH

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aa/chip/chip.hh"
#include "aa/compiler/scaling.hh"
#include "aa/isa/driver.hh"

namespace aa::compiler {

/** Hardware demand of one mapped system. */
struct ResourceDemand {
    std::size_t integrators = 0;
    std::size_t multipliers = 0;
    std::size_t fanout_blocks = 0;
    std::size_t dacs = 0;
    std::size_t adcs = 0;
    std::size_t luts = 0; ///< nonlinear mappings only

    /** True when a chip geometry satisfies this demand. */
    bool fitsOn(const chip::ChipGeometry &g) const;
};

/** Compute the demand of a (scaled) system without mapping it. */
ResourceDemand demandOf(const la::DenseMatrix &a, const la::Vector &b,
                        std::size_t fanout_copies = 2);

/** Smallest prototype-shaped geometry satisfying a demand. */
chip::ChipGeometry geometryFor(const ResourceDemand &demand);

/** FNV-1a hash of a matrix's sparsity pattern (n + nonzero
 *  positions); values do not contribute, so every rescale of the
 *  same system hashes identically. */
std::uint64_t sparsityHash(const la::DenseMatrix &a);

/** Hash of the geometry fields that determine unit inventories and
 *  (through the deterministic netlist build) block ids. */
std::uint64_t geometryKeyOf(const chip::ChipGeometry &g);

/**
 * Convergence-rate estimate of a scaled system: lambda_min of A_s
 * when it is SPD (Cholesky probe + power iteration), else a diagonal
 * bound. Since A_s = A / s, callers can compute this once per
 * structure and rescale by s_ref / s for every retry instead of
 * re-running the power iteration.
 */
double estimateConvergenceRate(const la::DenseMatrix &a_scaled,
                               bool expect_spd);

/**
 * The value-independent half of a mapping: unit assignment and the
 * crossbar connection list for one sparsity pattern on one chip
 * geometry. Immutable after construction; shared (and cached) across
 * solves, attempts and passes.
 */
class CompiledStructure
{
  public:
    /**
     * Compile the pattern of `a` onto the chip's units. fatal()s when
     * the chip is too small (use demandOf/geometryFor to size one).
     * Only positions of nonzeros are read — pass the scaled or the
     * unscaled matrix interchangeably.
     */
    CompiledStructure(const la::DenseMatrix &a,
                      const chip::Chip &chip);

    /** Ship the structure: clearConfig + every crossbar connection.
     *  Values and the commit are the binding's job. */
    void configureStructure(isa::AcceleratorDriver &driver) const;

    /** Read the scaled steady state through the ADCs. */
    la::Vector readSolution(isa::AcceleratorDriver &driver,
                            std::size_t samples = 4) const;

    std::size_t numVars() const { return n; }
    const ResourceDemand &demand() const { return used; }
    std::uint64_t patternHash() const { return pattern_hash; }
    std::uint64_t geometryKey() const { return geometry_key; }

    /** Number of programmed multipliers (= nnz of the pattern). */
    std::size_t numGains() const { return mul_unit.size(); }
    /** The (row, col) of A that gain slot k multiplies. */
    std::size_t gainRow(std::size_t k) const { return mul_row[k]; }
    std::size_t gainCol(std::size_t k) const { return mul_col[k]; }
    chip::BlockId mulOf(std::size_t k) const { return mul_unit[k]; }

    chip::BlockId integratorOf(std::size_t i) const;
    chip::BlockId adcOf(std::size_t i) const;
    chip::BlockId dacOf(std::size_t i) const;

    /** Gain magnitude ceiling of the compiled-for chip (the binding
     *  validates values against it). */
    double maxGain() const { return max_gain; }

  private:
    std::size_t n = 0;
    std::uint64_t pattern_hash = 0;
    std::uint64_t geometry_key = 0;
    double max_gain = 0.0;
    ResourceDemand used;

    std::vector<chip::BlockId> var_integrator;
    std::vector<chip::BlockId> var_adc;
    std::vector<chip::BlockId> var_dac;

    /** Multiplier serving nonzero k, with its (row, col), in the
     *  column-major traversal order the mapper has always used. */
    std::vector<chip::BlockId> mul_unit;
    std::vector<std::size_t> mul_row;
    std::vector<std::size_t> mul_col;

    /** Crossbar connections to program, in order. */
    std::vector<std::pair<chip::PortRef, chip::PortRef>> conns;
};

/**
 * The value half of a mapping: scaled gains, DAC biases, initial
 * state and the timeout for one attempt. Rebuilding one is O(nnz)
 * with no placement work; applying one through a shadowed driver
 * ships only the registers that actually changed.
 */
class ParameterBinding
{
  public:
    ParameterBinding() = default;

    /** Bind the scaled values of `sys` to the structure's slots.
     *  `lambda_min_scaled` is the convergence-rate estimate of the
     *  scaled system (see estimateConvergenceRate). */
    ParameterBinding(const CompiledStructure &cs,
                     const ScaledSystem &sys,
                     double lambda_min_scaled);

    /** Ship values + timeout, ending with cfgCommit. The structure
     *  must already be configured on the device. */
    void apply(const CompiledStructure &cs,
               isa::AcceleratorDriver &driver) const;

    /** Recommended analog-time budget: the scaled system's expected
     *  convergence time to ADC precision, with margin. */
    double recommendedTimeout(const circuit::AnalogSpec &spec) const;

    const ScalingPlan &plan() const { return scaling; }
    double lambdaMin() const { return lambda_min; }
    const la::Vector &scaledB() const { return b_scaled; }

  private:
    ScalingPlan scaling;
    std::vector<double> gains; ///< aligned with the structure's slots
    la::Vector b_scaled;
    la::Vector u0_scaled;
    double lambda_min = 0.0; ///< of the scaled A (for the timeout)
};

/** Hit/miss/eviction counters of a ProgramCache. */
struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    /** Structures installed from outside (placement/replication),
     *  as opposed to compiled on a fetch() miss. */
    std::size_t installs = 0;
};

/** One resident cache entry's key, exposed for affinity queries. */
struct CacheKeyView {
    std::uint64_t pattern = 0;
    std::uint64_t geometry = 0;
    std::size_t n = 0;
    bool pinned = false; ///< excluded from LRU eviction
};

/**
 * LRU cache of compiled structures keyed by (pattern hash, n,
 * geometry). Block ids are deterministic per geometry, so a cached
 * structure stays valid for any chip instance of equal geometry —
 * including a rebuilt die after regrow shrinks back, or a *different
 * die* of equal geometry: the placement layer replicates hot
 * structures across dies by install()ing one die's entry into
 * another die's cache. Pinned entries (explicit placements) are
 * never chosen for LRU eviction, so demand traffic cannot silently
 * evict a placement the policy is counting on.
 */
class ProgramCache
{
  public:
    explicit ProgramCache(std::size_t capacity = 16);

    /** Return the cached structure for (pattern of a, chip geometry),
     *  compiling and inserting it on a miss. */
    std::shared_ptr<const CompiledStructure>
    fetch(const la::DenseMatrix &a, const chip::Chip &chip);

    /**
     * fetch(), except a miss installs `donor` — compiled off-thread
     * (the pipeline stager's prepare path) for exactly this key —
     * instead of compiling inline. Counted as a plain miss: the
     * compile happened, just elsewhere. A null or mismatched donor
     * falls back to compiling. Keeping all stats/LRU mutations on
     * this call (the executor) rather than at prepare time makes
     * hit/miss attribution a pure function of the stamped execution
     * order, never of stager/executor interleaving.
     */
    std::shared_ptr<const CompiledStructure>
    fetch(const la::DenseMatrix &a, const chip::Chip &chip,
          std::shared_ptr<const CompiledStructure> donor);

    /** Observational exact-key lookup for the prepare path: the
     *  resident structure for (pattern of a, chip geometry), or null.
     *  Touches neither the LRU order nor the counters, like
     *  contains(). */
    std::shared_ptr<const CompiledStructure>
    lookup(const la::DenseMatrix &a, const chip::Chip &chip) const;

    /**
     * True when a structure for (pattern_hash, n) is resident under
     * any geometry. Purely observational: unlike fetch(), it touches
     * neither the LRU order nor the hit/miss counters, so a scheduler
     * may probe many dies' caches without perturbing their eviction
     * behavior.
     */
    bool contains(std::uint64_t pattern_hash, std::size_t n) const;

    /** Resident keys, most recently used first; read-only like
     *  contains(). */
    std::vector<CacheKeyView> keys() const;

    /**
     * Install an externally compiled structure (the placement layer's
     * replication/prefetch path). The entry becomes most recently
     * used; `pin` marks it exempt from LRU eviction. Re-installing a
     * resident key refreshes its LRU position and pin bit. Eviction
     * on overflow skips pinned entries; when every entry is pinned
     * the cache temporarily exceeds capacity rather than break a
     * placement.
     */
    void install(std::shared_ptr<const CompiledStructure> cs,
                 bool pin = true);

    /** MRU-first resident structure for (pattern_hash, n) under any
     *  geometry; observational like contains(). Null when absent. */
    std::shared_ptr<const CompiledStructure>
    peek(std::uint64_t pattern_hash, std::size_t n) const;

    /** Pin/unpin a resident (pattern_hash, n) under every geometry;
     *  returns entries touched. */
    std::size_t pin(std::uint64_t pattern_hash, std::size_t n,
                    bool pinned = true);

    /** Drop (pattern_hash, n) under every geometry (placement shed);
     *  returns entries removed. Not counted as an eviction. */
    std::size_t erase(std::uint64_t pattern_hash, std::size_t n);

    const CacheStats &stats() const { return stats_; }
    std::size_t size() const { return lru.size(); }
    std::size_t capacity() const { return capacity_; }
    void clear();

  private:
    struct Key {
        std::uint64_t pattern;
        std::uint64_t geometry;
        std::size_t n;
        bool operator==(const Key &o) const = default;
    };
    struct KeyHash {
        std::size_t operator()(const Key &k) const;
    };
    struct Entry {
        Key key;
        std::shared_ptr<const CompiledStructure> structure;
        bool pinned = false;
    };

    /** Evict the least-recently-used unpinned entry if the cache
     *  overflowed; no-op when all entries are pinned. */
    void evictIfOver();

    std::size_t capacity_;
    std::list<Entry> lru; ///< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    CacheStats stats_;
};

} // namespace aa::compiler

#endif // AA_COMPILER_PROGRAM_HH
