#include "aa/compiler/scaling.hh"

#include <algorithm>
#include <cmath>

#include "aa/common/logging.hh"

namespace aa::compiler {

ScaledSystem
scaleSystem(const la::DenseMatrix &a, const la::Vector &b,
            const la::Vector &u0, const circuit::AnalogSpec &spec,
            double solution_scale, BiasPolicy policy)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "scaleSystem: dimension mismatch");
    fatalIf(!u0.empty() && u0.size() != b.size(),
            "scaleSystem: u0 size mismatch");
    fatalIf(solution_scale <= 0.0,
            "scaleSystem: solution scale must be positive");

    ScaledSystem out;

    // s depends on A alone: pull every |a_ij| under the gain range
    // (with a small headroom so quantized gains do not land exactly
    // on the rail). Keeping b out of s makes the programmed gains a
    // pure function of (A, spec) — every right-hand side of the same
    // matrix binds onto identical multiplier registers, so the
    // driver's shadow file suppresses the whole gain plane on
    // rebinds; only the DAC biases travel.
    constexpr double headroom = 0.95;
    /** Coefficient floor below which the gain plane is scaled up. */
    constexpr double kScaleUpBelow = 0.25;
    double s = 1.0;
    if (a.maxAbs() > headroom * spec.max_gain) {
        s = a.maxAbs() / (headroom * spec.max_gain);
    } else if (a.maxAbs() > 0.0 && a.maxAbs() < kScaleUpBelow) {
        // Gain scale-UP (s < 1): coefficients far below the gain
        // range leave the feedback too weak to hold the integrators
        // against the DAC's half-LSB bias (256 codes across [-1, 1]
        // cannot represent 0), so every attempt rails and latches no
        // matter how large sigma grows. Circuit matrices are the
        // canonical case: milli-siemens conductances sit 3-4 decades
        // under the stencil coefficients. Multiply the gains up by
        // an exact power of two that lands max|a| in the top octave
        // of the gain range; the flow also converges faster by the
        // same factor (timeFactor < 1). The trigger is conservative:
        // every pre-existing workload programs max|a| >= 0.6, every
        // MNA assembly (DC conductances or backward-Euler companions
        // at practical dt) lands under 0.25, and matrices in
        // [kScaleUpBelow, headroom * max_gain] keep s = 1 so
        // existing plans and traces are untouched.
        double up = (headroom * spec.max_gain) / a.maxAbs();
        s = std::exp2(-std::floor(std::log2(up)));
    }

    // The bias range constrains the pair: b_s = b / (s * sigma) must
    // stay inside the DAC range. Under FloorSigma a large b raises
    // the solution scale to b_peak / (headroom * s) — pinning b_s at
    // full DAC scale while s stays pure in A. Under StretchTime the
    // requested sigma is honored and s grows instead, by an exact
    // power of two so repeated stretches land on identical gain
    // values (and the scaled-RHS ratio b_s stays fp-clean).
    double sigma = solution_scale;
    double b_peak = la::normInf(b);
    if (b_peak > headroom * s * sigma) {
        if (policy == BiasPolicy::FloorSigma) {
            sigma = b_peak / (headroom * s);
        } else {
            // A caller-derived sigma (solveBatch's ratio hint, a
            // refinement pass) can land `needed` a few ulps past 1
            // or past a power of two; an unguarded ceil would then
            // stretch the whole gain plane over rounding noise. The
            // DAC headroom (b_s trigger is at 0.95 of full scale)
            // absorbs an epsilon excess for free.
            double needed = b_peak / (headroom * s * sigma);
            if (needed > 1.0 + 1e-9)
                s *= std::exp2(
                    std::ceil(std::log2(needed) - 1e-9));
        }
    }
    out.plan.gain_scale = s;
    out.plan.solution_scale = sigma;

    out.a = a;
    out.a *= 1.0 / s;
    la::scale(1.0 / (s * sigma), b, out.b);

    if (u0.empty()) {
        out.u0 = la::Vector(b.size());
    } else {
        la::scale(1.0 / sigma, u0, out.u0);
        // The integrator IC DAC clamps at full scale; a guess outside
        // the range is clipped (the run will still converge).
        for (std::size_t i = 0; i < out.u0.size(); ++i)
            out.u0[i] = std::clamp(out.u0[i], -spec.linear_range,
                                   spec.linear_range);
    }
    return out;
}

la::Vector
unscaleSolution(const la::Vector &u_hat, const ScalingPlan &plan)
{
    la::Vector u;
    la::scale(plan.solution_scale, u_hat, u);
    return u;
}

} // namespace aa::compiler
