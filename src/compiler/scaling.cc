#include "aa/compiler/scaling.hh"

#include <algorithm>
#include <cmath>

#include "aa/common/logging.hh"

namespace aa::compiler {

ScaledSystem
scaleSystem(const la::DenseMatrix &a, const la::Vector &b,
            const la::Vector &u0, const circuit::AnalogSpec &spec,
            double solution_scale)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "scaleSystem: dimension mismatch");
    fatalIf(!u0.empty() && u0.size() != b.size(),
            "scaleSystem: u0 size mismatch");
    fatalIf(solution_scale <= 0.0,
            "scaleSystem: solution scale must be positive");

    ScaledSystem out;
    out.plan.solution_scale = solution_scale;

    // s must pull every |a_ij| under the gain range and every
    // |b_i / sigma| under the DAC range. Keep a small headroom so
    // quantized gains do not land exactly on the rail.
    constexpr double headroom = 0.95;
    double s = 1.0;
    if (a.maxAbs() > 0.0)
        s = std::max(s, a.maxAbs() / (headroom * spec.max_gain));
    double b_peak = la::normInf(b) / solution_scale;
    if (b_peak > 0.0)
        s = std::max(s, b_peak / headroom);
    out.plan.gain_scale = s;

    out.a = a;
    out.a *= 1.0 / s;
    la::scale(1.0 / (s * solution_scale), b, out.b);

    if (u0.empty()) {
        out.u0 = la::Vector(b.size());
    } else {
        la::scale(1.0 / solution_scale, u0, out.u0);
        // The integrator IC DAC clamps at full scale; a guess outside
        // the range is clipped (the run will still converge).
        for (std::size_t i = 0; i < out.u0.size(); ++i)
            out.u0[i] = std::clamp(out.u0[i], -spec.linear_range,
                                   spec.linear_range);
    }
    return out;
}

la::Vector
unscaleSolution(const la::Vector &u_hat, const ScalingPlan &plan)
{
    la::Vector u;
    la::scale(plan.solution_scale, u_hat, u);
    return u;
}

} // namespace aa::compiler
