/**
 * @file
 * Value and time scaling (paper Section VI-D inset).
 *
 * A system A u = b with coefficients outside the multipliers' gain
 * range (or biases outside the DAC range) is programmed as
 * A_s = A / s, b_s = b / (s * sigma), where
 *  - s ("gain scale") compresses coefficients into the usable gain
 *    range at the price of stretching solve time by s, and
 *  - sigma ("solution scale") shrinks the computed solution
 *    u_hat = u / sigma into the +/-1 signal range; the host multiplies
 *    the readout by sigma.
 *
 * The closed form u(t) = A^-1 b + c e^(-At) is invariant under this
 * transformation, which is what makes the trick sound.
 */

#ifndef AA_COMPILER_SCALING_HH
#define AA_COMPILER_SCALING_HH

#include "aa/circuit/spec.hh"
#include "aa/la/dense_matrix.hh"
#include "aa/la/vector.hh"

namespace aa::compiler {

/** The chosen scaling of one problem instance. */
struct ScalingPlan {
    double gain_scale = 1.0;     ///< s: divides A (and stretches time)
    double solution_scale = 1.0; ///< sigma: u = sigma * u_hat

    /** Factor by which convergence time stretches relative to the
     *  unscaled system. */
    double timeFactor() const { return gain_scale; }
};

/** A scaled, mappable system plus its plan. */
struct ScaledSystem {
    la::DenseMatrix a; ///< A / s — every entry within max_gain
    la::Vector b;      ///< b / (s * sigma) — within DAC range
    la::Vector u0;     ///< initial guess / sigma — within +/-1
    ScalingPlan plan;
};

/**
 * Choose s (and fold in a caller-provided sigma) so the system fits
 * the hardware ranges, then apply it. `solution_scale` starts at the
 * caller's estimate of max|u| (>= 1 keeps the solution in range); the
 * exception-driven retry loop in aa_analog raises it when overflow
 * latches fire and lowers it when the dynamic range is underused.
 *
 * s is not a free parameter: the 0.95 headroom deliberately puts b_s
 * near full DAC scale, so any s above the range-derived minimum
 * wastes DAC codes and costs readout precision. The retry loop must
 * therefore re-derive s per sigma rather than holding it monotone.
 */
ScaledSystem scaleSystem(const la::DenseMatrix &a, const la::Vector &b,
                         const la::Vector &u0,
                         const circuit::AnalogSpec &spec,
                         double solution_scale = 1.0);

/** Map a scaled readout back to problem units: u = sigma * u_hat. */
la::Vector unscaleSolution(const la::Vector &u_hat,
                           const ScalingPlan &plan);

} // namespace aa::compiler

#endif // AA_COMPILER_SCALING_HH
