/**
 * @file
 * Value and time scaling (paper Section VI-D inset).
 *
 * A system A u = b with coefficients outside the multipliers' gain
 * range (or biases outside the DAC range) is programmed as
 * A_s = A / s, b_s = b / (s * sigma), where
 *  - s ("gain scale") compresses coefficients into the usable gain
 *    range at the price of stretching solve time by s — or, for
 *    matrices whose coefficients sit far BELOW the range (circuit
 *    conductances in siemens), expands them (s < 1, an exact power
 *    of two) so the feedback is strong enough to hold the
 *    integrators against quantized-DAC bias, and
 *  - sigma ("solution scale") shrinks the computed solution
 *    u_hat = u / sigma into the +/-1 signal range; the host multiplies
 *    the readout by sigma.
 *
 * The closed form u(t) = A^-1 b + c e^(-At) is invariant under this
 * transformation, which is what makes the trick sound.
 *
 * The split of responsibilities is deliberate: s is a function of A
 * (and the spec) alone, while a right-hand side too large for the
 * DAC range raises sigma instead. Programmed gains are therefore
 * identical across every RHS of the same matrix, which is what lets
 * batched multi-RHS solves (and steady-state service traffic) rebind
 * only the DAC biases through the shadow-register delta path
 * (DESIGN.md 5g).
 */

#ifndef AA_COMPILER_SCALING_HH
#define AA_COMPILER_SCALING_HH

#include "aa/circuit/spec.hh"
#include "aa/la/dense_matrix.hh"
#include "aa/la/vector.hh"

namespace aa::compiler {

/** The chosen scaling of one problem instance. */
struct ScalingPlan {
    double gain_scale = 1.0;     ///< s: divides A (and stretches time)
    double solution_scale = 1.0; ///< sigma: u = sigma * u_hat

    /** Factor by which convergence time stretches relative to the
     *  unscaled system. */
    double timeFactor() const { return gain_scale; }
};

/** A scaled, mappable system plus its plan. */
struct ScaledSystem {
    la::DenseMatrix a; ///< A / s — every entry within max_gain
    la::Vector b;      ///< b / (s * sigma) — within DAC range
    la::Vector u0;     ///< initial guess / sigma — within +/-1
    ScalingPlan plan;
};

/**
 * What to do when b exceeds the DAC range at the requested sigma —
 * the one place the two knobs trade off against each other.
 */
enum class BiasPolicy {
    /**
     * Raise sigma to the floor b_peak / (0.95 * s) that pins b_s at
     * full DAC scale. s stays a pure function of (A, spec), so every
     * RHS of the same matrix binds identical multiplier registers —
     * the cheap-rebind default for first attempts and batched traffic.
     * Costs readout resolution when max|u| is well below the floor.
     */
    FloorSigma,
    /**
     * Honor the requested sigma exactly and stretch time instead:
     * raise s by the next power of two that brings b inside the DAC
     * range. Retries that *need* a smaller sigma (precision) use
     * this; the power-of-two quantization keeps the stretched gain
     * plane drawn from a tiny discrete set, so repeated passes at
     * similar ranges still shadow-suppress their gain writes.
     */
    StretchTime,
};

/**
 * Choose s from A, fold in a caller-provided sigma, and apply both.
 * `solution_scale` starts at the caller's estimate of max|u| (>= 1
 * keeps the solution in range); the exception-driven retry loop in
 * aa_analog raises it when overflow latches fire and lowers it when
 * the dynamic range is underused.
 *
 * sigma is not fully free: a right-hand side beyond the DAC range at
 * the requested sigma forces a choice, resolved per `policy` — raise
 * sigma (FloorSigma, the default) or raise s (StretchTime). Either
 * way the returned plan holds the effective values; callers iterating
 * on sigma should adopt plan.solution_scale.
 */
ScaledSystem scaleSystem(const la::DenseMatrix &a, const la::Vector &b,
                         const la::Vector &u0,
                         const circuit::AnalogSpec &spec,
                         double solution_scale = 1.0,
                         BiasPolicy policy = BiasPolicy::FloorSigma);

/** Map a scaled readout back to problem units: u = sigma * u_hat. */
la::Vector unscaleSolution(const la::Vector &u_hat,
                           const ScalingPlan &plan);

} // namespace aa::compiler

#endif // AA_COMPILER_SCALING_HH
