/**
 * @file
 * Preconditioned Krylov solvers with pluggable — and possibly
 * nonstationary — preconditioners: flexible preconditioned CG for
 * SPD systems and flexible GMRES(m) for nonsymmetric ones.
 *
 * The preconditioner is a callback z ~= M^{-1} r. The intended M is a
 * single unrefined analog solve (aa/analog/precond.hh): cheap, ~8-bit
 * accurate, and *different every apply* — the re-scaling ladder, range
 * memory, and ADC quantization make the effective operator vary from
 * iteration to iteration. That nonstationarity is why the flexible
 * variants are implemented here: classic right-preconditioned GMRES
 * reconstructs x from M^{-1} V_m y and silently loses optimality when
 * M moves between iterations, while FGMRES stores the actual
 * preconditioned vectors Z_m = [z_1 .. z_m] and minimizes over their
 * span, so each apply may be any operator at all (Saad '93). CG
 * likewise uses the Polak-Ribiere (flexible) beta, which re-orthogonalizes
 * against the previous residual instead of trusting a fixed M.
 *
 * A failed apply (the callback returns false) is not fatal: the
 * iteration falls back to z = r — an identity apply — and the result
 * is still checked against the true residual at exit. The solvers
 * never report converged without ||b - A x|| actually meeting the
 * target: no silent wrong answers, matching the service contract.
 */

#ifndef AA_SOLVER_KRYLOV_HH
#define AA_SOLVER_KRYLOV_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "aa/la/operator.hh"
#include "aa/la/vector.hh"

namespace aa::solver {

using la::LinearOperator;
using la::Vector;

/**
 * One preconditioner application z ~= M^{-1} r. Return false when the
 * apply could not run (analog range exhaustion, die fault): the
 * caller substitutes z = r for that iteration and keeps going.
 * Exceptions propagate — a dead die must abort the whole solve, not
 * degrade it silently.
 */
using PrecondFn = std::function<bool(const Vector &r, Vector &z)>;

/** z = r: turns the flexible solvers into plain CG / GMRES(m). */
PrecondFn identityPreconditioner();

/** z = D^{-1} r from the operator's diagonal (classic Jacobi). */
PrecondFn jacobiPreconditioner(const LinearOperator &a);

/** Why the iteration stopped. */
enum class KrylovStop {
    Converged,     ///< relative residual met the tolerance
    MaxIterations, ///< iteration budget exhausted
    Breakdown,     ///< short recurrence died; see `stop_detail`
    Interrupted,   ///< keep_going() said stop (deadline)
};

/** Options shared by the Krylov solvers. */
struct KrylovOptions {
    std::size_t max_iters = 500; ///< total inner iterations
    /** Convergence target ||b - A x||_2 <= tol * ||b||_2. */
    double tol = 1e-8;
    /** FGMRES restart length m (ignored by CG). */
    std::size_t restart = 30;
    /** Record the residual norm after every iteration. */
    bool record_residuals = false;
    /** Starting guess; zero vector when empty. */
    Vector x0;
    /** Checked between iterations; false = stop where we are
     *  (deadline gating, like RefineOptions::keep_going). */
    std::function<bool()> keep_going;
};

/** Outcome of a Krylov solve. */
struct KrylovResult {
    Vector x;
    bool converged = false;
    std::size_t iterations = 0; ///< inner iterations (matvecs)
    std::size_t restarts = 0;   ///< FGMRES cycles beyond the first
    KrylovStop stop = KrylovStop::MaxIterations;
    std::string stop_detail;    ///< stable text for failure chains
    /** ||b - A x||_2 at exit, explicitly recomputed — never the
     *  recurrence estimate, so `converged` is a digital fact. */
    double final_residual = 0.0;

    std::size_t precond_applies = 0;  ///< callback invocations
    std::size_t precond_failures = 0; ///< applies that returned false

    std::vector<double> residual_history;
};

/**
 * Flexible preconditioned conjugate gradients (Polak-Ribiere beta).
 * Requires an SPD operator; an indefinite direction (p'Ap <= 0) or
 * indefinite preconditioned residual (r'z <= 0) stops with
 * KrylovStop::Breakdown — the caller's cue to fall through to the
 * next ladder lane rather than iterate on garbage.
 */
KrylovResult flexibleCg(const LinearOperator &a, const Vector &b,
                        const PrecondFn &precond,
                        const KrylovOptions &opts = {});

/**
 * Flexible GMRES(m), right-preconditioned, modified Gram-Schmidt
 * Arnoldi with Givens rotations. Handles nonsymmetric systems and
 * arbitrary (nonstationary) preconditioners. A happy breakdown
 * (h_{j+1,j} ~ 0) solves the projected system exactly and exits
 * through the normal convergence check.
 */
KrylovResult fgmres(const LinearOperator &a, const Vector &b,
                    const PrecondFn &precond,
                    const KrylovOptions &opts = {});

} // namespace aa::solver

#endif // AA_SOLVER_KRYLOV_HH
