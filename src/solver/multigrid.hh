/**
 * @file
 * Geometric multigrid for the Poisson problem.
 *
 * The paper leans on multigrid twice: as the digital state of the art
 * (Section VI-B) and as the context where imprecise analog solves
 * remain useful — "less stable, inaccurate, low precision techniques,
 * such as analog acceleration, may also be used to support multigrid"
 * (Section IV-A). The coarse-level solver is therefore pluggable;
 * aa_analog installs the analog accelerator there (HybridMultigrid).
 */

#ifndef AA_SOLVER_MULTIGRID_HH
#define AA_SOLVER_MULTIGRID_HH

#include <functional>
#include <memory>
#include <vector>

#include "aa/la/csr_matrix.hh"
#include "aa/la/vector.hh"
#include "aa/pde/poisson.hh"

namespace aa::solver {

/**
 * Coarsest-grid solver hook. Receives the assembled coarse operator
 * and right-hand side; returns the (possibly approximate) solution.
 */
using CoarseSolverFn =
    std::function<la::Vector(const la::CsrMatrix &, const la::Vector &)>;

/** Options for the multigrid driver. */
struct MgOptions {
    std::size_t pre_smooth = 2;
    std::size_t post_smooth = 2;
    double jacobi_weight = 2.0 / 3.0; ///< damped-Jacobi smoother weight
    std::size_t min_points_per_side = 3; ///< coarsest level size
    std::size_t max_cycles = 200;
    double tol = 1e-10; ///< relative residual target
    bool record_residuals = false;
    /** Empty = exact dense Cholesky on the coarsest level. */
    CoarseSolverFn coarse_solver;
};

/** Outcome of a multigrid solve. */
struct MgResult {
    la::Vector x;
    std::size_t cycles = 0;
    bool converged = false;
    double final_residual = 0.0;
    std::vector<double> residual_history;
    std::size_t flops = 0;
};

/** Inter-grid transfers (exposed for tests and the hybrid solver). */
namespace transfer {

/** Full-weighting restriction, fine l -> coarse (l-1)/2, per dim. */
la::Vector restrictFullWeighting(std::size_t dim, std::size_t l_fine,
                                 const la::Vector &fine);

/** (Multi)linear interpolation, coarse l -> fine 2l+1, per dim. */
la::Vector prolongLinear(std::size_t dim, std::size_t l_coarse,
                         const la::Vector &coarse);

} // namespace transfer

/**
 * Geometric V-cycle multigrid on the unit-domain Poisson operator.
 * Requires l_finest of the form 2^k - 1 so grids nest down to the
 * configured coarsest size.
 */
class Multigrid
{
  public:
    Multigrid(std::size_t dim, std::size_t l_finest,
              MgOptions opts = {});
    ~Multigrid();
    Multigrid(Multigrid &&) noexcept;
    Multigrid &operator=(Multigrid &&) noexcept;

    /** Solve A x = b from the zero initial guess. */
    MgResult solve(const la::Vector &b) const;
    /** Solve with an explicit starting guess. */
    MgResult solve(const la::Vector &b, la::Vector x0) const;

    /** Apply exactly one V-cycle to (x, b); returns updated x. */
    la::Vector vcycleOnce(la::Vector x, const la::Vector &b) const;

    std::size_t levels() const;
    std::size_t fineSize() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace aa::solver

#endif // AA_SOLVER_MULTIGRID_HH
