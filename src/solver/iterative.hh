/**
 * @file
 * Classical iterative linear solvers with convergence-history
 * recording: Jacobi, Gauss-Seidel, SOR, steepest descent, and
 * conjugate gradients — exactly the lineup of the paper's Figure 7.
 *
 * CG and steepest descent run against any LinearOperator (so the
 * matrix-free Poisson stencil works); Jacobi/GS/SOR need row access
 * and take a CsrMatrix.
 */

#ifndef AA_SOLVER_ITERATIVE_HH
#define AA_SOLVER_ITERATIVE_HH

#include <string>
#include <vector>

#include "aa/la/csr_matrix.hh"
#include "aa/la/operator.hh"
#include "aa/la/vector.hh"

namespace aa::solver {

using la::CsrMatrix;
using la::LinearOperator;
using la::Vector;

/** When to declare convergence. */
enum class Criterion {
    /** ||r||_2 <= tol * ||b||_2 (classic relative residual). */
    RelativeResidual,
    /**
     * No solution element changed by more than tol in the last
     * iteration — the paper's stopping rule with tol = 1/256 of full
     * scale, chosen to match one analog-accelerator run's precision.
     */
    MaxChange
};

/** Options shared by all iterative solvers. */
struct IterOptions {
    std::size_t max_iters = 100000;
    Criterion criterion = Criterion::RelativeResidual;
    double tol = 1e-10;

    /** SOR relaxation factor (ignored elsewhere). */
    double omega = 1.5;

    /** Record ||r||_2 after every iteration. */
    bool record_residuals = false;

    /**
     * When set, record ||x_k - exact||_2 after every iteration — the
     * L2-norm error axis of Figure 7.
     */
    const Vector *exact = nullptr;

    /** Starting guess; zero vector when empty. */
    Vector x0;
};

/** Outcome of an iterative solve. */
struct IterResult {
    Vector x;
    std::size_t iterations = 0;
    bool converged = false;
    double final_residual = 0.0; ///< ||b - A x||_2 at exit

    std::vector<double> residual_history;
    std::vector<double> error_history;

    /**
     * Total scalar multiply-add work performed, for the energy
     * models: operator applies are charged via applyFlops(), vector
     * kernels at one flop per element.
     */
    std::size_t flops = 0;
};

/** x_{k+1} = x_k + D^{-1} (b - A x_k). */
IterResult jacobi(const LinearOperator &a, const Vector &b,
                  const IterOptions &opts = {});

/** Forward Gauss-Seidel sweeps. */
IterResult gaussSeidel(const CsrMatrix &a, const Vector &b,
                       const IterOptions &opts = {});

/** Successive over-relaxation with factor opts.omega. */
IterResult sor(const CsrMatrix &a, const Vector &b,
               const IterOptions &opts = {});

/** Steepest (gradient) descent with exact line search. */
IterResult steepestDescent(const LinearOperator &a, const Vector &b,
                           const IterOptions &opts = {});

/** Conjugate gradients (Hestenes-Stiefel). Requires SPD a. */
IterResult conjugateGradient(const LinearOperator &a, const Vector &b,
                             const IterOptions &opts = {});

/** Jacobi (diagonal) preconditioned conjugate gradients. */
IterResult preconditionedCg(const LinearOperator &a, const Vector &b,
                            const IterOptions &opts = {});

} // namespace aa::solver

#endif // AA_SOLVER_ITERATIVE_HH
