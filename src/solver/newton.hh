/**
 * @file
 * Digital Newton-Raphson solver for nonlinear systems of the form
 *
 *     F(u) = A u + phi(u) - b = 0
 *
 * with an elementwise nonlinearity phi — the class of systems the
 * paper's Section VI-F points to as analog computing's more promising
 * target ("these iterative solvers have continuous time formulations,
 * which again involve solving ODEs"). This digital solver is the
 * baseline the analog nonlinear flow (aa_analog) is compared against.
 */

#ifndef AA_SOLVER_NEWTON_HH
#define AA_SOLVER_NEWTON_HH

#include <functional>
#include <vector>

#include "aa/la/dense_matrix.hh"
#include "aa/la/vector.hh"

namespace aa::solver {

/** F(u) = A u + phi(u) - b with elementwise phi. */
struct NonlinearSystem {
    la::DenseMatrix a;
    la::Vector b;
    /** Elementwise nonlinearity and its derivative. */
    std::function<double(double)> phi;
    std::function<double(double)> phi_prime;

    std::size_t size() const { return b.size(); }

    /** F(u). */
    la::Vector residual(const la::Vector &u) const;

    /** Jacobian A + diag(phi'(u)). */
    la::DenseMatrix jacobian(const la::Vector &u) const;
};

/** Options for the damped Newton iteration. */
struct NewtonOptions {
    std::size_t max_iters = 50;
    double tol = 1e-12; ///< on ||F(u)||_2 relative to ||b||_2 (or 1)
    /** Backtracking line search: halve the step until the residual
     *  norm decreases (up to this many halvings; 0 = full steps). */
    std::size_t max_backtracks = 8;
    la::Vector x0;
    bool record_history = false;
};

/** Outcome of a Newton solve. */
struct NewtonResult {
    la::Vector x;
    std::size_t iterations = 0;
    bool converged = false;
    double final_residual = 0.0;
    std::vector<double> residual_history;
    /** Linear (Jacobian) solves performed — each is the unit of work
     *  the paper's implicit-stepping cost discussion counts. */
    std::size_t jacobian_solves = 0;
};

/** Damped Newton-Raphson with dense Jacobian solves. */
NewtonResult newtonSolve(const NonlinearSystem &sys,
                         const NewtonOptions &opts = {});

} // namespace aa::solver

#endif // AA_SOLVER_NEWTON_HH
