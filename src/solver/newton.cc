#include "aa/solver/newton.hh"

#include <cmath>

#include "aa/common/logging.hh"
#include "aa/la/direct.hh"

namespace aa::solver {

la::Vector
NonlinearSystem::residual(const la::Vector &u) const
{
    panicIf(u.size() != b.size(), "NonlinearSystem: size mismatch");
    la::Vector f = a.apply(u);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] += (phi ? phi(u[i]) : 0.0) - b[i];
    return f;
}

la::DenseMatrix
NonlinearSystem::jacobian(const la::Vector &u) const
{
    la::DenseMatrix j = a;
    if (phi_prime) {
        for (std::size_t i = 0; i < u.size(); ++i)
            j(i, i) += phi_prime(u[i]);
    }
    return j;
}

NewtonResult
newtonSolve(const NonlinearSystem &sys, const NewtonOptions &opts)
{
    fatalIf(sys.a.rows() != sys.a.cols() ||
                sys.a.rows() != sys.b.size(),
            "newtonSolve: dimension mismatch");
    fatalIf(bool(sys.phi) != bool(sys.phi_prime),
            "newtonSolve: phi and phi_prime must come together");

    NewtonResult res;
    res.x = opts.x0.empty() ? la::Vector(sys.size()) : opts.x0;
    fatalIf(res.x.size() != sys.size(),
            "newtonSolve: x0 size mismatch");

    double scale = la::norm2(sys.b);
    if (scale == 0.0)
        scale = 1.0;

    la::Vector f = sys.residual(res.x);
    double fnorm = la::norm2(f);
    for (std::size_t it = 0; it < opts.max_iters; ++it) {
        if (opts.record_history)
            res.residual_history.push_back(fnorm);
        if (fnorm <= opts.tol * scale) {
            res.converged = true;
            break;
        }

        la::DenseMatrix j = sys.jacobian(res.x);
        auto lu = la::Lu::factor(j);
        fatalIf(!lu, "newtonSolve: singular Jacobian at iteration ",
                it);
        la::Vector minus_f = f;
        minus_f *= -1.0;
        la::Vector delta = lu->solve(minus_f);
        ++res.jacobian_solves;

        // Backtracking: accept the longest step in {1, 1/2, ...}
        // that reduces ||F||.
        double step = 1.0;
        la::Vector x_try;
        la::Vector f_try;
        double fnorm_try = fnorm;
        for (std::size_t bt = 0; bt <= opts.max_backtracks; ++bt) {
            x_try = res.x;
            la::axpy(step, delta, x_try);
            f_try = sys.residual(x_try);
            fnorm_try = la::norm2(f_try);
            if (fnorm_try < fnorm || opts.max_backtracks == 0)
                break;
            step *= 0.5;
        }
        res.x = std::move(x_try);
        f = std::move(f_try);
        fnorm = fnorm_try;
        res.iterations = it + 1;
    }
    res.final_residual = fnorm;
    if (!res.converged)
        res.converged = fnorm <= opts.tol * scale;
    if (opts.record_history)
        res.residual_history.push_back(fnorm);
    return res;
}

} // namespace aa::solver
