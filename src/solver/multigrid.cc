#include "aa/solver/multigrid.hh"

#include <cmath>

#include "aa/common/logging.hh"
#include "aa/la/direct.hh"

namespace aa::solver {

namespace {

/** Tiny n-d array view over a Vector with cubic shape per level. */
struct Shape {
    std::size_t dim;
    std::size_t l[3];

    std::size_t
    total() const
    {
        std::size_t n = 1;
        for (std::size_t a = 0; a < dim; ++a)
            n *= l[a];
        return n;
    }

    std::size_t
    stride(std::size_t axis) const
    {
        std::size_t s = 1;
        for (std::size_t a = 0; a < axis; ++a)
            s *= l[a];
        return s;
    }
};

/**
 * Apply 1D full weighting along one axis: out length (l-1)/2 per
 * line, out[c] = (in[2c] + 2 in[2c+1] + in[2c+2]) / 4.
 */
la::Vector
restrictAxis(const la::Vector &in, Shape &shape, std::size_t axis)
{
    std::size_t lf = shape.l[axis];
    panicIf(lf < 3 || lf % 2 == 0,
            "restrictAxis: fine side must be odd >= 3");
    std::size_t lc = (lf - 1) / 2;

    Shape out_shape = shape;
    out_shape.l[axis] = lc;
    la::Vector out(out_shape.total());

    std::size_t stride = shape.stride(axis);
    std::size_t lines = shape.total() / lf;

    // Enumerate line origins: every index whose axis coordinate is 0.
    std::size_t line = 0;
    for (std::size_t base = 0; line < lines; ++base) {
        // Skip bases that are not line origins.
        if ((base / stride) % lf != 0)
            continue;
        ++line;
        std::size_t out_base =
            (base / (stride * lf)) * (stride * lc) + (base % stride);
        for (std::size_t c = 0; c < lc; ++c) {
            std::size_t f = 2 * c + 1;
            out[out_base + c * stride] =
                0.25 * in[base + (f - 1) * stride] +
                0.50 * in[base + f * stride] +
                0.25 * in[base + (f + 1) * stride];
        }
    }
    shape = out_shape;
    return out;
}

/**
 * Apply 1D linear interpolation along one axis: coarse l -> fine
 * 2l+1. Odd fine points copy the coarse value; even points average
 * their coarse neighbors, with zero Dirichlet data outside.
 */
la::Vector
prolongAxis(const la::Vector &in, Shape &shape, std::size_t axis)
{
    std::size_t lc = shape.l[axis];
    std::size_t lf = 2 * lc + 1;

    Shape out_shape = shape;
    out_shape.l[axis] = lf;
    la::Vector out(out_shape.total());

    std::size_t stride = shape.stride(axis);
    std::size_t lines = shape.total() / lc;

    std::size_t line = 0;
    for (std::size_t base = 0; line < lines; ++base) {
        if ((base / stride) % lc != 0)
            continue;
        ++line;
        std::size_t out_base =
            (base / (stride * lc)) * (stride * lf) + (base % stride);
        for (std::size_t f = 0; f < lf; ++f) {
            double v;
            if (f % 2 == 1) {
                v = in[base + ((f - 1) / 2) * stride];
            } else {
                double left =
                    f == 0 ? 0.0 : in[base + (f / 2 - 1) * stride];
                double right =
                    f == lf - 1 ? 0.0 : in[base + (f / 2) * stride];
                v = 0.5 * (left + right);
            }
            out[out_base + f * stride] = v;
        }
    }
    shape = out_shape;
    return out;
}

} // namespace

namespace transfer {

la::Vector
restrictFullWeighting(std::size_t dim, std::size_t l_fine,
                      const la::Vector &fine)
{
    Shape shape{dim, {l_fine, dim >= 2 ? l_fine : 1,
                      dim >= 3 ? l_fine : 1}};
    shape.dim = 3; // treat missing axes as length-1 (strides stay valid)
    shape.l[0] = l_fine;
    shape.l[1] = dim >= 2 ? l_fine : 1;
    shape.l[2] = dim >= 3 ? l_fine : 1;
    panicIf(fine.size() != shape.total(),
            "restrictFullWeighting: size mismatch");
    la::Vector v = fine;
    for (std::size_t a = 0; a < dim; ++a)
        v = restrictAxis(v, shape, a);
    return v;
}

la::Vector
prolongLinear(std::size_t dim, std::size_t l_coarse,
              const la::Vector &coarse)
{
    Shape shape{3, {l_coarse, dim >= 2 ? l_coarse : 1,
                    dim >= 3 ? l_coarse : 1}};
    panicIf(coarse.size() != shape.total(),
            "prolongLinear: size mismatch");
    la::Vector v = coarse;
    for (std::size_t a = 0; a < dim; ++a)
        v = prolongAxis(v, shape, a);
    return v;
}

} // namespace transfer

struct Multigrid::Impl {
    std::size_t dim;
    MgOptions opts;

    struct Level {
        std::size_t l;
        pde::PoissonStencil op;
        Level(std::size_t dim, std::size_t l) : l(l), op(dim, l) {}
    };
    std::vector<Level> levels; ///< [0] = finest

    la::CsrMatrix coarse_a;
    /** Dense Cholesky of the coarsest operator (default path). */
    std::optional<la::Cholesky> coarse_chol;

    mutable std::size_t flops = 0;

    Impl(std::size_t dim, std::size_t l_finest, MgOptions o)
        : dim(dim), opts(std::move(o))
    {
        fatalIf(dim < 1 || dim > 3, "Multigrid: dim must be 1..3");
        std::size_t l = l_finest;
        levels.emplace_back(dim, l);
        while (l > opts.min_points_per_side && l % 2 == 1 && l >= 3) {
            std::size_t lc = (l - 1) / 2;
            if (lc < 1)
                break;
            l = lc;
            levels.emplace_back(dim, l);
            if (l <= opts.min_points_per_side)
                break;
        }
        fatalIf(levels.size() < 2,
                "Multigrid: l_finest = ", l_finest,
                " leaves no coarse level; use 2^k - 1");

        coarse_a = pde::assemblePoisson(dim, levels.back().l).a;
        if (!opts.coarse_solver) {
            coarse_chol =
                la::Cholesky::factor(coarse_a.toDense());
            panicIf(!coarse_chol,
                    "Multigrid: coarse Poisson operator not SPD");
        }
    }

    void
    smooth(const Level &lvl, la::Vector &u, const la::Vector &b,
           std::size_t sweeps) const
    {
        la::Vector au;
        la::Vector d = lvl.op.diagonal();
        for (std::size_t s = 0; s < sweeps; ++s) {
            lvl.op.apply(u, au);
            flops += lvl.op.applyFlops();
            for (std::size_t i = 0; i < u.size(); ++i)
                u[i] += opts.jacobi_weight * (b[i] - au[i]) / d[i];
            flops += 3 * u.size();
        }
    }

    la::Vector
    coarseSolve(const la::Vector &b) const
    {
        if (opts.coarse_solver)
            return opts.coarse_solver(coarse_a, b);
        return coarse_chol->solve(b);
    }

    void
    vcycle(std::size_t k, la::Vector &u, const la::Vector &b) const
    {
        if (k + 1 == levels.size()) {
            u = coarseSolve(b);
            return;
        }
        const Level &lvl = levels[k];
        smooth(lvl, u, b, opts.pre_smooth);

        la::Vector r;
        lvl.op.apply(u, r);
        flops += lvl.op.applyFlops() + r.size();
        for (std::size_t i = 0; i < r.size(); ++i)
            r[i] = b[i] - r[i];

        la::Vector rc =
            transfer::restrictFullWeighting(dim, lvl.l, r);
        la::Vector ec(rc.size());
        vcycle(k + 1, ec, rc);

        la::Vector ef =
            transfer::prolongLinear(dim, levels[k + 1].l, ec);
        la::axpy(1.0, ef, u);
        flops += u.size();

        smooth(lvl, u, b, opts.post_smooth);
    }
};

Multigrid::Multigrid(std::size_t dim, std::size_t l_finest,
                     MgOptions opts)
    : impl(std::make_unique<Impl>(dim, l_finest, std::move(opts)))
{}

Multigrid::~Multigrid() = default;
Multigrid::Multigrid(Multigrid &&) noexcept = default;
Multigrid &Multigrid::operator=(Multigrid &&) noexcept = default;

std::size_t
Multigrid::levels() const
{
    return impl->levels.size();
}

std::size_t
Multigrid::fineSize() const
{
    return impl->levels.front().op.size();
}

la::Vector
Multigrid::vcycleOnce(la::Vector x, const la::Vector &b) const
{
    fatalIf(b.size() != fineSize(), "vcycleOnce: rhs size mismatch");
    fatalIf(x.size() != fineSize(), "vcycleOnce: x size mismatch");
    impl->vcycle(0, x, b);
    return x;
}

MgResult
Multigrid::solve(const la::Vector &b) const
{
    return solve(b, la::Vector(fineSize()));
}

MgResult
Multigrid::solve(const la::Vector &b, la::Vector x0) const
{
    fatalIf(b.size() != fineSize(), "Multigrid::solve: rhs mismatch");
    fatalIf(x0.size() != fineSize(), "Multigrid::solve: x0 mismatch");

    MgResult res;
    res.x = std::move(x0);
    impl->flops = 0;

    double bnorm = la::norm2(b);
    if (bnorm == 0.0)
        bnorm = 1.0;
    const auto &fine = impl->levels.front();

    la::Vector r;
    for (std::size_t c = 0; c < impl->opts.max_cycles; ++c) {
        impl->vcycle(0, res.x, b);
        res.cycles = c + 1;

        fine.op.apply(res.x, r);
        impl->flops += fine.op.applyFlops() + r.size();
        for (std::size_t i = 0; i < r.size(); ++i)
            r[i] = b[i] - r[i];
        res.final_residual = la::norm2(r);
        if (impl->opts.record_residuals)
            res.residual_history.push_back(res.final_residual);
        if (res.final_residual <= impl->opts.tol * bnorm) {
            res.converged = true;
            break;
        }
    }
    res.flops = impl->flops;
    return res;
}

} // namespace aa::solver
