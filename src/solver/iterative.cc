#include "aa/solver/iterative.hh"

#include <cmath>

#include "aa/common/logging.hh"

namespace aa::solver {

namespace {

/** Shared convergence bookkeeping for all the solvers below. */
struct Tracker {
    const IterOptions &opts;
    double bnorm;
    IterResult res;

    Tracker(const IterOptions &opts, const Vector &b)
        : opts(opts), bnorm(la::norm2(b))
    {
        if (bnorm == 0.0)
            bnorm = 1.0;
    }

    /** Record history entries after an iteration. */
    void
    record(double rnorm, const Vector &x)
    {
        if (opts.record_residuals)
            res.residual_history.push_back(rnorm);
        if (opts.exact) {
            panicIf(opts.exact->size() != x.size(),
                    "IterOptions::exact size mismatch");
            res.error_history.push_back(
                la::norm2(x - *opts.exact));
            res.flops += 2 * x.size();
        }
    }

    /** True when the configured criterion is met. */
    bool
    done(double rnorm, double max_change) const
    {
        if (opts.criterion == Criterion::RelativeResidual)
            return rnorm <= opts.tol * bnorm;
        return max_change <= opts.tol;
    }
};

Vector
startVector(const IterOptions &opts, std::size_t n)
{
    if (opts.x0.empty())
        return Vector(n);
    fatalIf(opts.x0.size() != n, "IterOptions::x0 size mismatch");
    return opts.x0;
}

} // namespace

IterResult
jacobi(const LinearOperator &a, const Vector &b, const IterOptions &opts)
{
    std::size_t n = a.size();
    fatalIf(b.size() != n, "jacobi: rhs size mismatch");
    Tracker trk(opts, b);
    Vector x = startVector(opts, n);
    Vector d = a.diagonal();
    for (std::size_t i = 0; i < n; ++i)
        fatalIf(d[i] == 0.0, "jacobi: zero diagonal at row ", i);

    Vector ax, r(n);
    for (std::size_t it = 0; it < opts.max_iters; ++it) {
        a.apply(x, ax);
        trk.res.flops += a.applyFlops();
        double max_change = 0.0;
        double r2 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double ri = b[i] - ax[i];
            r2 += ri * ri;
            double dx = ri / d[i];
            x[i] += dx;
            max_change = std::max(max_change, std::fabs(dx));
        }
        trk.res.flops += 4 * n;
        double rnorm = std::sqrt(r2);
        trk.res.iterations = it + 1;
        trk.record(rnorm, x);
        if (trk.done(rnorm, max_change)) {
            trk.res.converged = true;
            trk.res.final_residual = rnorm;
            break;
        }
        trk.res.final_residual = rnorm;
    }
    trk.res.x = std::move(x);
    return trk.res;
}

namespace {

/** One forward GS/SOR sweep; returns max |delta x|. */
double
sweep(const CsrMatrix &a, const Vector &b, double omega, Vector &x)
{
    double max_change = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        auto cols = a.rowCols(i);
        auto vals = a.rowVals(i);
        double diag = 0.0;
        double acc = b[i];
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == i)
                diag = vals[k];
            else
                acc -= vals[k] * x[cols[k]];
        }
        fatalIf(diag == 0.0, "gs/sor: zero diagonal at row ", i);
        double x_new = (1.0 - omega) * x[i] + omega * acc / diag;
        max_change = std::max(max_change, std::fabs(x_new - x[i]));
        x[i] = x_new;
    }
    return max_change;
}

IterResult
relaxationSolve(const CsrMatrix &a, const Vector &b, double omega,
                const IterOptions &opts)
{
    fatalIf(a.rows() != a.cols(), "gs/sor: matrix not square");
    fatalIf(b.size() != a.rows(), "gs/sor: rhs size mismatch");
    Tracker trk(opts, b);
    Vector x = startVector(opts, a.rows());

    for (std::size_t it = 0; it < opts.max_iters; ++it) {
        double max_change = sweep(a, b, omega, x);
        trk.res.flops += a.nnz() + 3 * a.rows();

        Vector r = b;
        a.applyAdd(-1.0, x, r);
        trk.res.flops += a.nnz() + b.size();
        double rnorm = la::norm2(r);

        trk.res.iterations = it + 1;
        trk.record(rnorm, x);
        trk.res.final_residual = rnorm;
        if (trk.done(rnorm, max_change)) {
            trk.res.converged = true;
            break;
        }
    }
    trk.res.x = std::move(x);
    return trk.res;
}

} // namespace

IterResult
gaussSeidel(const CsrMatrix &a, const Vector &b, const IterOptions &opts)
{
    return relaxationSolve(a, b, 1.0, opts);
}

IterResult
sor(const CsrMatrix &a, const Vector &b, const IterOptions &opts)
{
    fatalIf(opts.omega <= 0.0 || opts.omega >= 2.0,
            "sor: omega must be in (0, 2), got ", opts.omega);
    return relaxationSolve(a, b, opts.omega, opts);
}

IterResult
steepestDescent(const LinearOperator &a, const Vector &b,
                const IterOptions &opts)
{
    std::size_t n = a.size();
    fatalIf(b.size() != n, "steepestDescent: rhs size mismatch");
    Tracker trk(opts, b);
    Vector x = startVector(opts, n);

    Vector r, q;
    a.apply(x, r);
    trk.res.flops += a.applyFlops();
    for (std::size_t i = 0; i < n; ++i)
        r[i] = b[i] - r[i];

    for (std::size_t it = 0; it < opts.max_iters; ++it) {
        double rr = la::dot(r, r);
        double rnorm = std::sqrt(rr);
        if (rnorm == 0.0) {
            trk.res.converged = true;
            trk.res.iterations = it;
            break;
        }
        a.apply(r, q);
        double rq = la::dot(r, q);
        trk.res.flops += a.applyFlops() + 4 * n;
        fatalIf(rq <= 0.0,
                "steepestDescent: operator not positive definite");
        double alpha = rr / rq;
        la::axpy(alpha, r, x);
        la::axpy(-alpha, q, r);
        trk.res.flops += 4 * n;

        double max_change = alpha * la::normInf(r + alpha * q);
        double new_rnorm = la::norm2(r);
        trk.res.iterations = it + 1;
        trk.record(new_rnorm, x);
        trk.res.final_residual = new_rnorm;
        if (trk.done(new_rnorm, max_change)) {
            trk.res.converged = true;
            break;
        }
    }
    trk.res.x = std::move(x);
    return trk.res;
}

namespace {

/** CG with an optional diagonal preconditioner (empty = identity). */
IterResult
cgImpl(const LinearOperator &a, const Vector &b, const Vector &precond,
       const IterOptions &opts)
{
    std::size_t n = a.size();
    fatalIf(b.size() != n, "cg: rhs size mismatch");
    Tracker trk(opts, b);
    Vector x = startVector(opts, n);

    Vector r, q;
    a.apply(x, r);
    trk.res.flops += a.applyFlops();
    for (std::size_t i = 0; i < n; ++i)
        r[i] = b[i] - r[i];

    auto apply_precond = [&](const Vector &v) {
        if (precond.empty())
            return v;
        Vector z(n);
        for (std::size_t i = 0; i < n; ++i)
            z[i] = v[i] * precond[i];
        return z;
    };

    Vector z = apply_precond(r);
    Vector p = z;
    double rz = la::dot(r, z);

    for (std::size_t it = 0; it < opts.max_iters; ++it) {
        double rnorm = la::norm2(r);
        if (rnorm == 0.0) {
            trk.res.converged = true;
            trk.res.iterations = it;
            break;
        }
        a.apply(p, q);
        double pq = la::dot(p, q);
        trk.res.flops += a.applyFlops() + 2 * n;
        fatalIf(pq <= 0.0, "cg: operator not positive definite");
        double alpha = rz / pq;
        la::axpy(alpha, p, x);
        la::axpy(-alpha, q, r);
        trk.res.flops += 4 * n;

        double max_change = alpha * la::normInf(p);
        double new_rnorm = la::norm2(r);
        trk.res.iterations = it + 1;
        trk.record(new_rnorm, x);
        trk.res.final_residual = new_rnorm;
        if (trk.done(new_rnorm, max_change)) {
            trk.res.converged = true;
            break;
        }

        z = apply_precond(r);
        double rz_new = la::dot(r, z);
        trk.res.flops += precond.empty() ? 2 * n : 3 * n;
        double beta = rz_new / rz;
        rz = rz_new;
        la::xpby(z, beta, p);
        trk.res.flops += 2 * n;
    }
    trk.res.x = std::move(x);
    return trk.res;
}

} // namespace

IterResult
conjugateGradient(const LinearOperator &a, const Vector &b,
                  const IterOptions &opts)
{
    return cgImpl(a, b, Vector(), opts);
}

IterResult
preconditionedCg(const LinearOperator &a, const Vector &b,
                 const IterOptions &opts)
{
    Vector d = a.diagonal();
    Vector inv(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
        fatalIf(d[i] == 0.0, "pcg: zero diagonal at row ", i);
        inv[i] = 1.0 / d[i];
    }
    return cgImpl(a, b, inv, opts);
}

} // namespace aa::solver
