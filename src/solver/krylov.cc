#include "aa/solver/krylov.hh"

#include <cmath>

#include "aa/common/logging.hh"

namespace aa::solver {

namespace {

/** Relative-residual denominator: ||b||, or 1 for a zero rhs. */
double
residualScale(const Vector &b)
{
    double bnorm = la::norm2(b);
    return bnorm > 0.0 ? bnorm : 1.0;
}

Vector
startVector(const KrylovOptions &opts, std::size_t n)
{
    if (opts.x0.empty())
        return Vector(n);
    fatalIf(opts.x0.size() != n, "KrylovOptions::x0 size mismatch");
    return opts.x0;
}

/** ||b - A x||_2, freshly computed. */
double
trueResidual(const LinearOperator &a, const Vector &b, const Vector &x,
             Vector &scratch)
{
    a.apply(x, scratch);
    double r2 = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        double ri = b[i] - scratch[i];
        r2 += ri * ri;
    }
    return std::sqrt(r2);
}

/** Run the preconditioner; z = r when the apply reports failure. */
void
applyPrecond(const PrecondFn &precond, const Vector &r, Vector &z,
             KrylovResult &res)
{
    ++res.precond_applies;
    if (!precond(r, z)) {
        ++res.precond_failures;
        z = r;
    }
}

} // namespace

PrecondFn
identityPreconditioner()
{
    return [](const Vector &r, Vector &z) {
        z = r;
        return true;
    };
}

PrecondFn
jacobiPreconditioner(const LinearOperator &a)
{
    Vector d = a.diagonal();
    for (std::size_t i = 0; i < d.size(); ++i)
        fatalIf(d[i] == 0.0,
                "jacobiPreconditioner: zero diagonal at row ", i);
    return [d = std::move(d)](const Vector &r, Vector &z) {
        z.resize(r.size());
        for (std::size_t i = 0; i < r.size(); ++i)
            z[i] = r[i] / d[i];
        return true;
    };
}

KrylovResult
flexibleCg(const LinearOperator &a, const Vector &b,
           const PrecondFn &precond, const KrylovOptions &opts)
{
    const std::size_t n = a.size();
    fatalIf(b.size() != n, "flexibleCg: rhs size mismatch");
    KrylovResult res;
    res.x = startVector(opts, n);
    const double target = opts.tol * residualScale(b);

    Vector r(n), scratch;
    a.apply(res.x, scratch);
    for (std::size_t i = 0; i < n; ++i)
        r[i] = b[i] - scratch[i];
    double rnorm = la::norm2(r);
    if (opts.record_residuals)
        res.residual_history.push_back(rnorm);
    if (rnorm <= target) {
        // Tolerance already met at entry: zero iterations, no
        // preconditioner traffic.
        res.converged = true;
        res.stop = KrylovStop::Converged;
        res.final_residual = rnorm;
        return res;
    }

    Vector z(n);
    applyPrecond(precond, r, z, res);
    Vector p = z;
    Vector ap(n), r_prev = r;
    double rz = la::dot(r, z);
    if (rz <= 0.0) {
        res.stop = KrylovStop::Breakdown;
        res.stop_detail = "indefinite preconditioned residual";
        res.final_residual = rnorm;
        return res;
    }

    for (std::size_t it = 0; it < opts.max_iters; ++it) {
        if (opts.keep_going && !opts.keep_going()) {
            res.stop = KrylovStop::Interrupted;
            res.stop_detail = "interrupted by keep_going";
            break;
        }
        a.apply(p, ap);
        const double pap = la::dot(p, ap);
        if (pap <= 0.0) {
            // Zero/negative curvature: the operator is not SPD along
            // p (or the flexible beta produced a dead direction).
            res.stop = KrylovStop::Breakdown;
            res.stop_detail = "zero-curvature direction";
            break;
        }
        const double alpha = rz / pap;
        la::axpy(alpha, p, res.x);
        r_prev = r;
        la::axpy(-alpha, ap, r);
        ++res.iterations;
        rnorm = la::norm2(r);
        if (opts.record_residuals)
            res.residual_history.push_back(rnorm);
        if (rnorm <= target) {
            res.converged = true;
            res.stop = KrylovStop::Converged;
            break;
        }
        applyPrecond(precond, r, z, res);
        // Polak-Ribiere (flexible) beta: z' (r - r_prev) instead of
        // z' r, so a preconditioner that moved between applies does
        // not poison the direction update.
        double rz_next = la::dot(r, z);
        double beta = (rz_next - la::dot(r_prev, z)) / rz;
        rz = rz_next;
        if (rz <= 0.0) {
            res.stop = KrylovStop::Breakdown;
            res.stop_detail = "indefinite preconditioned residual";
            break;
        }
        if (beta < 0.0)
            beta = 0.0; // restart: steepest-descent step
        la::xpby(z, beta, p);
    }

    res.final_residual = trueResidual(a, b, res.x, scratch);
    res.converged = res.final_residual <= target;
    if (res.converged)
        res.stop = KrylovStop::Converged;
    return res;
}

KrylovResult
fgmres(const LinearOperator &a, const Vector &b,
       const PrecondFn &precond, const KrylovOptions &opts)
{
    const std::size_t n = a.size();
    fatalIf(b.size() != n, "fgmres: rhs size mismatch");
    const std::size_t m = std::max<std::size_t>(1, opts.restart);
    KrylovResult res;
    res.x = startVector(opts, n);
    const double target = opts.tol * residualScale(b);

    Vector r(n), scratch;
    a.apply(res.x, scratch);
    for (std::size_t i = 0; i < n; ++i)
        r[i] = b[i] - scratch[i];
    double rnorm = la::norm2(r);
    if (opts.record_residuals)
        res.residual_history.push_back(rnorm);
    if (rnorm <= target) {
        res.converged = true;
        res.stop = KrylovStop::Converged;
        res.final_residual = rnorm;
        return res;
    }

    // Arnoldi workspace, sized for one restart cycle: the m+1 Krylov
    // basis vectors V, the m preconditioned vectors Z (the flexible
    // part — FGMRES reconstructs x from the *actual* applies, so M
    // may change freely between iterations), the Hessenberg columns,
    // and the Givens rotations that keep the least-squares residual
    // available for free each step.
    std::vector<Vector> v(m + 1), z(m);
    std::vector<std::vector<double>> h(m);
    std::vector<double> cs(m), sn(m), g(m + 1);
    Vector w(n);

    bool interrupted = false;
    std::size_t cycle = 0;
    while (res.iterations < opts.max_iters && !interrupted) {
        // Cycle setup from the *true* residual of the current x.
        a.apply(res.x, scratch);
        for (std::size_t i = 0; i < n; ++i)
            r[i] = b[i] - scratch[i];
        rnorm = la::norm2(r);
        if (rnorm <= target)
            break;
        // Count the restart only once the cycle is actually going to
        // iterate: the final pass through this loop is just the
        // convergence verification and runs no Arnoldi steps.
        if (cycle > 0)
            ++res.restarts;
        ++cycle;
        la::scale(1.0 / rnorm, r, v[0]);
        std::fill(g.begin(), g.end(), 0.0);
        g[0] = rnorm;

        std::size_t j = 0;
        for (; j < m && res.iterations < opts.max_iters; ++j) {
            if (opts.keep_going && !opts.keep_going()) {
                interrupted = true;
                res.stop = KrylovStop::Interrupted;
                res.stop_detail = "interrupted by keep_going";
                break;
            }
            applyPrecond(precond, v[j], z[j], res);
            a.apply(z[j], w);
            ++res.iterations;

            // Modified Gram-Schmidt against the basis so far.
            h[j].assign(j + 2, 0.0);
            for (std::size_t i = 0; i <= j; ++i) {
                h[j][i] = la::dot(w, v[i]);
                la::axpy(-h[j][i], v[i], w);
            }
            double wnorm = la::norm2(w);
            h[j][j + 1] = wnorm;
            bool happy = wnorm <= 1e-14 * rnorm;
            if (!happy)
                la::scale(1.0 / wnorm, w, v[j + 1]);

            // Apply the accumulated Givens rotations to the new
            // column, then zero its subdiagonal with a fresh one.
            for (std::size_t i = 0; i < j; ++i) {
                double t = cs[i] * h[j][i] + sn[i] * h[j][i + 1];
                h[j][i + 1] =
                    -sn[i] * h[j][i] + cs[i] * h[j][i + 1];
                h[j][i] = t;
            }
            double denom = std::hypot(h[j][j], h[j][j + 1]);
            if (denom == 0.0) {
                // Fully degenerate column (z_j in the span already
                // and w vanished): nothing to rotate, basis is done.
                ++j;
                break;
            }
            cs[j] = h[j][j] / denom;
            sn[j] = h[j][j + 1] / denom;
            h[j][j] = denom;
            h[j][j + 1] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];

            double est = std::abs(g[j + 1]);
            if (opts.record_residuals)
                res.residual_history.push_back(est);
            if (happy || est <= target) {
                // Happy breakdown: the Krylov space is invariant and
                // the projected solve is exact — take the update and
                // let the true-residual check below confirm it.
                ++j;
                break;
            }
        }

        // x += Z_j y with H y = g by back substitution.
        if (j > 0) {
            std::vector<double> y(j, 0.0);
            for (std::size_t ii = j; ii-- > 0;) {
                double s = g[ii];
                for (std::size_t kk = ii + 1; kk < j; ++kk)
                    s -= h[kk][ii] * y[kk];
                y[ii] = s / h[ii][ii];
            }
            for (std::size_t kk = 0; kk < j; ++kk)
                la::axpy(y[kk], z[kk], res.x);
        }
    }

    res.final_residual = trueResidual(a, b, res.x, scratch);
    res.converged = res.final_residual <= target;
    if (res.converged)
        res.stop = KrylovStop::Converged;
    else if (!interrupted && res.iterations >= opts.max_iters)
        res.stop = KrylovStop::MaxIterations;
    return res;
}

} // namespace aa::solver
