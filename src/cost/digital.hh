/**
 * @file
 * Measured digital baselines for the figure benches: run the real
 * stencil CG to the paper's stopping rule and report iterations,
 * wall-clock time on the host CPU, and the model-projected time on
 * the paper's Xeon (so both "measured" and "modelled" digital series
 * can be printed side by side).
 */

#ifndef AA_COST_DIGITAL_HH
#define AA_COST_DIGITAL_HH

#include <cstddef>

#include "aa/cost/model.hh"

namespace aa::cost {

/** One measured digital CG run. */
struct DigitalMeasurement {
    std::size_t iterations = 0;
    bool converged = false;
    double wall_seconds = 0.0;  ///< host wall clock (this machine)
    double model_seconds = 0.0; ///< CpuModel projection (paper Xeon)
    std::size_t flops = 0;      ///< actual multiply-add count
};

/**
 * Solve the d-dimensional manufactured Poisson problem with stencil
 * CG, stopping when no element changes by more than 2^-adc_bits of
 * full scale — the paper's "equivalent precision to one accelerator
 * run" criterion. Wall time is the median of `repeats` runs.
 */
DigitalMeasurement measureCgPoisson(std::size_t dim, std::size_t l,
                                    std::size_t adc_bits,
                                    const CpuModel &cpu = {},
                                    std::size_t repeats = 3);

} // namespace aa::cost

#endif // AA_COST_DIGITAL_HH
