/**
 * @file
 * Paper Table II: measured power and area of the prototype chip's
 * components, with the fraction of each that belongs to the analog
 * signal path ("core"). Core power and area scale linearly with the
 * design bandwidth (Section V-B's derivation); the non-core remainder
 * (calibration, testing, registers) stays fixed.
 */

#ifndef AA_COST_TABLE2_HH
#define AA_COST_TABLE2_HH

#include <cstddef>

namespace aa::cost {

/** One row of Table II. */
struct UnitCost {
    double power_w;       ///< total unit power at 20 KHz
    double core_power_fraction;
    double area_mm2;      ///< total unit area at 20 KHz
    double core_area_fraction;

    /** Power at bandwidth multiple alpha (core scales, rest fixed). */
    double
    powerAt(double alpha) const
    {
        return power_w *
               (core_power_fraction * alpha +
                (1.0 - core_power_fraction));
    }

    /** Area at bandwidth multiple alpha. */
    double
    areaAt(double alpha) const
    {
        return area_mm2 *
               (core_area_fraction * alpha +
                (1.0 - core_area_fraction));
    }
};

/** The measured component table (Guo et al., 65 nm, 20 KHz). */
struct ComponentTable {
    UnitCost integrator{28e-6, 0.80, 0.040, 0.40};
    UnitCost fanout{37e-6, 0.80, 0.015, 0.33};
    UnitCost multiplier{49e-6, 0.80, 0.050, 0.47};
    UnitCost adc{54e-6, 0.50, 0.054, 0.83};
    UnitCost dac{4.6e-6, 1.00, 0.022, 0.61};
};

/** The prototype's analog bandwidth that Table II was measured at. */
inline constexpr double kPrototypeBandwidthHz = 20e3;

/** The largest GPU die the paper uses as the area ceiling. */
inline constexpr double kDieCeilingMm2 = 600.0;

} // namespace aa::cost

#endif // AA_COST_TABLE2_HH
