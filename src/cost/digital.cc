#include "aa/cost/digital.hh"

#include <algorithm>
#include <chrono>
#include <vector>

#include "aa/common/logging.hh"
#include "aa/pde/manufactured.hh"
#include "aa/pde/poisson.hh"
#include "aa/solver/iterative.hh"

namespace aa::cost {

DigitalMeasurement
measureCgPoisson(std::size_t dim, std::size_t l, std::size_t adc_bits,
                 const CpuModel &cpu, std::size_t repeats)
{
    fatalIf(repeats == 0, "measureCgPoisson: need at least one run");

    // Boundary-driven workload (u = 1 on the x = 0 face, as in the
    // paper's Figure 7 problem). NOTE: a smooth sine source is an
    // exact eigenvector of the discrete Laplacian and would let CG
    // converge in one step, understating the digital cost.
    pde::PoissonStencil stencil(dim, l);
    la::Vector b = pde::assemblePoisson(
                       dim, l, pde::zeroSource(),
                       [](double x, double, double) {
                           return x == 0.0 ? 1.0 : 0.0;
                       })
                       .b;

    solver::IterOptions opts;
    opts.criterion = solver::Criterion::MaxChange;
    opts.tol = 1.0 / static_cast<double>(1ull << adc_bits);

    DigitalMeasurement m;
    std::vector<double> times;
    times.reserve(repeats);
    for (std::size_t r = 0; r < repeats; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        auto res = solver::conjugateGradient(stencil, b, opts);
        auto t1 = std::chrono::steady_clock::now();
        times.push_back(
            std::chrono::duration<double>(t1 - t0).count());
        m.iterations = res.iterations;
        m.converged = res.converged;
        m.flops = res.flops;
    }
    std::sort(times.begin(), times.end());
    m.wall_seconds = times[times.size() / 2];
    m.model_seconds =
        cpu.timeSeconds(stencil.size(), m.iterations);
    return m;
}

} // namespace aa::cost
