/**
 * @file
 * The large-N accelerator model (the paper's Section V methodology):
 * seeded with Table II measurements, scaled with bandwidth, validated
 * against aa_circuit simulations at small N, and extrapolated to the
 * grid sizes of Figures 8-12.
 */

#ifndef AA_COST_MODEL_HH
#define AA_COST_MODEL_HH

#include <cstddef>

#include "aa/cost/table2.hh"

namespace aa::cost {

/** Unit inventory of one mapped Poisson problem. */
struct UnitCounts {
    std::size_t integrators = 0;
    std::size_t multipliers = 0;
    std::size_t fanouts = 0;
    std::size_t adcs = 0;
    std::size_t dacs = 0;
};

/**
 * Inventory-accounting assumptions. Defaults follow the prototype's
 * organization: the diagonal coefficient folds into the integrator's
 * input VGA (the die photo's "VGAs"), so multipliers and fanout
 * blocks are charged per off-diagonal nonzero, and ADC/DAC are shared
 * between two variables as in the prototype's macroblock grouping.
 */
struct CostAssumptions {
    bool fold_diagonal_into_integrator = true;
    std::size_t vars_per_adc = 2;
    std::size_t vars_per_dac = 2;
};

/** Static facts about a d-dimensional Poisson grid problem. */
struct PoissonShape {
    std::size_t dim;
    std::size_t l; ///< grid points per side

    std::size_t gridPoints() const;
    /** Nonzeros of the (2d+1)-point stencil matrix, exact. */
    std::size_t nnz() const;
    std::size_t offDiagonalNnz() const;

    /**
     * Smallest eigenvalue of the gain-scaled matrix A/s where
     * s = maxAbs(A)/(headroom * g): closed form
     * lambda_min(A_s) = 2 * headroom * g * sin^2(pi*h/2), h = 1/(l+1).
     * This sets the continuous-time convergence rate.
     */
    double lambdaMinScaled(double max_gain,
                           double headroom = 0.95) const;

    /** Condition number of the discrete operator (exact). */
    double conditionNumber() const;
};

/** One analog accelerator design point for the evaluation. */
class AcceleratorDesign
{
  public:
    AcceleratorDesign(double bandwidth_hz, std::size_t adc_bits = 12,
                      double max_gain = 32.0,
                      CostAssumptions assumptions = {},
                      ComponentTable table = {});

    double bandwidthHz() const { return bandwidth_hz; }
    std::size_t adcBits() const { return adc_bits; }
    /** Bandwidth multiple over the 20 KHz prototype. */
    double alpha() const;

    /** Unit inventory for a Poisson problem. */
    UnitCounts unitsFor(const PoissonShape &shape) const;

    /** Max-activity power of an inventory (Figure 10's metric). */
    double powerWatts(const UnitCounts &units) const;
    /** Silicon area of an inventory (Figure 11). */
    double areaMm2(const UnitCounts &units) const;

    /**
     * Continuous-time solve time to ADC precision: the gradient flow
     * decays as exp(-2*pi*BW*lambda_min(A_s)*t); converging a
     * full-scale error below half an LSB takes
     * (adc_bits + 1) * ln 2 decades.
     */
    double solveTimeSeconds(const PoissonShape &shape) const;

    /** power * time (Figure 12's analog series). */
    double solveEnergyJoules(const PoissonShape &shape) const;

    /** Largest grid (points) fitting the area budget (Figure 9/11's
     *  600 mm^2 cut-offs). */
    std::size_t maxGridPoints(std::size_t dim,
                              double area_budget_mm2 =
                                  kDieCeilingMm2) const;

    const ComponentTable &componentTable() const { return table; }
    const CostAssumptions &assumptions() const { return assume; }

  private:
    double bandwidth_hz;
    std::size_t adc_bits;
    double max_gain;
    CostAssumptions assume;
    ComponentTable table;
};

/**
 * Fleet sizing for the sharded service's cost story: racks of dies,
 * every die an instance of one AcceleratorDesign sized for one
 * problem shape. Extends the paper's per-die Table-II accounting to
 * deployment scale — total silicon and power grow linearly with
 * racks × dies, while service throughput grows with the same factor
 * (each die sustains 1/solve-time solves per second), so the
 * *density* metrics (solves/s per mm², per W) are invariant in fleet
 * size and expose the per-die design point as the thing to optimize.
 */
struct FleetSpec {
    std::size_t racks = 1;
    std::size_t dies_per_rack = 1;
    /** Host/interconnect overhead charged per rack, watts (the part
     *  of a deployment Table II does not see). */
    double rack_overhead_w = 0.0;
};

/** Priced-out fleet for one design point and problem shape. */
struct FleetCost {
    std::size_t dies = 0;      ///< racks * dies_per_rack
    double die_area_mm2 = 0.0; ///< one die's inventory area
    double die_power_w = 0.0;  ///< one die's max-activity power
    double total_area_mm2 = 0.0;
    double total_power_w = 0.0; ///< dies + per-rack overhead
    double solve_seconds = 0.0; ///< one solve on one die
    /** Fleet-wide sustained throughput: dies / solve_seconds. */
    double solves_per_second = 0.0;
    double solvesPerSecondPerMm2() const;
    double solvesPerSecondPerWatt() const;
};

/** Price a fleet of `spec` running `shape` on `design` dies. */
FleetCost fleetCost(const AcceleratorDesign &design,
                    const PoissonShape &shape, const FleetSpec &spec);

/** The paper's four design points (20/80/320 KHz, 1.3 MHz). */
AcceleratorDesign prototypeDesign(); ///< 20 KHz, 8-bit ADC
AcceleratorDesign design80kHz();
AcceleratorDesign design320kHz();
AcceleratorDesign design1300kHz();

/** The paper's single-core CPU timing model: a sustained 20 clock
 *  cycles per numerical iteration per row, at 2.67 GHz (Xeon X5550). */
struct CpuModel {
    double clock_hz = 2.67e9;
    double cycles_per_row_iter = 20.0;

    double
    timeSeconds(std::size_t rows, std::size_t iterations) const
    {
        return cycles_per_row_iter * static_cast<double>(rows) *
               static_cast<double>(iterations) / clock_hz;
    }
};

/** The paper's GPU energy model: 225 pJ per floating-point
 *  multiply-add (Keckler et al.), with CG charged ~10 FMA per row
 *  per iteration (5-point stencil apply plus vector updates). */
struct GpuModel {
    double energy_per_fma_j = 225e-12;
    double fma_per_row_iter = 10.0;

    double
    energyJoules(std::size_t rows, std::size_t iterations) const
    {
        return energy_per_fma_j * fma_per_row_iter *
               static_cast<double>(rows) *
               static_cast<double>(iterations);
    }
};

} // namespace aa::cost

#endif // AA_COST_MODEL_HH
