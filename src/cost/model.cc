#include "aa/cost/model.hh"

#include <cmath>
#include <numbers>

#include "aa/common/logging.hh"

namespace aa::cost {

std::size_t
PoissonShape::gridPoints() const
{
    std::size_t n = 1;
    for (std::size_t a = 0; a < dim; ++a)
        n *= l;
    return n;
}

std::size_t
PoissonShape::offDiagonalNnz() const
{
    // Each axis contributes (l-1) * l^(d-1) grid edges, two
    // off-diagonal entries each.
    std::size_t per_axis = l - 1;
    for (std::size_t a = 1; a < dim; ++a)
        per_axis *= l;
    return 2 * dim * per_axis;
}

std::size_t
PoissonShape::nnz() const
{
    return gridPoints() + offDiagonalNnz();
}

double
PoissonShape::lambdaMinScaled(double max_gain, double headroom) const
{
    fatalIf(dim < 1 || dim > 3 || l < 1, "PoissonShape: bad shape");
    double h = 1.0 / static_cast<double>(l + 1);
    double s_min = std::sin(std::numbers::pi * h / 2.0);
    // lambda_min(A) = 4*dim*sin^2(pi*h/2)/h^2; maxAbs(A) = 2*dim/h^2;
    // s = maxAbs/(headroom*g)  =>  lambda_min(A/s) =
    //     2*headroom*g*sin^2(pi*h/2).
    return 2.0 * headroom * max_gain * s_min * s_min;
}

double
PoissonShape::conditionNumber() const
{
    double h = 1.0 / static_cast<double>(l + 1);
    double s_min = std::sin(std::numbers::pi * h / 2.0);
    double s_max = std::cos(std::numbers::pi * h / 2.0);
    return (s_max * s_max) / (s_min * s_min);
}

AcceleratorDesign::AcceleratorDesign(double bandwidth_hz,
                                     std::size_t adc_bits,
                                     double max_gain,
                                     CostAssumptions assumptions,
                                     ComponentTable table)
    : bandwidth_hz(bandwidth_hz), adc_bits(adc_bits),
      max_gain(max_gain), assume(assumptions), table(table)
{
    fatalIf(bandwidth_hz <= 0.0, "AcceleratorDesign: bad bandwidth");
    fatalIf(adc_bits < 4 || adc_bits > 16,
            "AcceleratorDesign: adc_bits out of range");
}

double
AcceleratorDesign::alpha() const
{
    return bandwidth_hz / kPrototypeBandwidthHz;
}

UnitCounts
AcceleratorDesign::unitsFor(const PoissonShape &shape) const
{
    UnitCounts u;
    std::size_t n = shape.gridPoints();
    u.integrators = n;
    u.multipliers = assume.fold_diagonal_into_integrator
                        ? shape.offDiagonalNnz()
                        : shape.nnz();
    // Every variable's fanout tree needs (consumers - 1) two-copy
    // blocks; consumers = its column's multipliers + one ADC leaf.
    u.fanouts = u.multipliers;
    u.adcs = (n + assume.vars_per_adc - 1) / assume.vars_per_adc;
    u.dacs = (n + assume.vars_per_dac - 1) / assume.vars_per_dac;
    return u;
}

double
AcceleratorDesign::powerWatts(const UnitCounts &u) const
{
    double a = alpha();
    return table.integrator.powerAt(a) *
               static_cast<double>(u.integrators) +
           table.multiplier.powerAt(a) *
               static_cast<double>(u.multipliers) +
           table.fanout.powerAt(a) * static_cast<double>(u.fanouts) +
           table.adc.powerAt(a) * static_cast<double>(u.adcs) +
           table.dac.powerAt(a) * static_cast<double>(u.dacs);
}

double
AcceleratorDesign::areaMm2(const UnitCounts &u) const
{
    double a = alpha();
    return table.integrator.areaAt(a) *
               static_cast<double>(u.integrators) +
           table.multiplier.areaAt(a) *
               static_cast<double>(u.multipliers) +
           table.fanout.areaAt(a) * static_cast<double>(u.fanouts) +
           table.adc.areaAt(a) * static_cast<double>(u.adcs) +
           table.dac.areaAt(a) * static_cast<double>(u.dacs);
}

double
AcceleratorDesign::solveTimeSeconds(const PoissonShape &shape) const
{
    double decades =
        static_cast<double>(adc_bits + 1) * std::numbers::ln2;
    double rate = 2.0 * std::numbers::pi * bandwidth_hz *
                  shape.lambdaMinScaled(max_gain);
    return decades / rate;
}

double
AcceleratorDesign::solveEnergyJoules(const PoissonShape &shape) const
{
    return powerWatts(unitsFor(shape)) * solveTimeSeconds(shape);
}

std::size_t
AcceleratorDesign::maxGridPoints(std::size_t dim,
                                 double area_budget_mm2) const
{
    std::size_t lo = 0;
    std::size_t hi = 2;
    // Exponential search on l, then bisect.
    while (areaMm2(unitsFor({dim, hi})) <= area_budget_mm2)
        hi *= 2;
    lo = hi / 2;
    if (areaMm2(unitsFor({dim, 1})) > area_budget_mm2)
        return 0;
    if (lo < 1)
        lo = 1;
    while (hi - lo > 1) {
        std::size_t mid = lo + (hi - lo) / 2;
        if (areaMm2(unitsFor({dim, mid})) <= area_budget_mm2)
            lo = mid;
        else
            hi = mid;
    }
    return PoissonShape{dim, lo}.gridPoints();
}

double
FleetCost::solvesPerSecondPerMm2() const
{
    return total_area_mm2 > 0.0 ? solves_per_second / total_area_mm2
                                : 0.0;
}

double
FleetCost::solvesPerSecondPerWatt() const
{
    return total_power_w > 0.0 ? solves_per_second / total_power_w
                               : 0.0;
}

FleetCost
fleetCost(const AcceleratorDesign &design, const PoissonShape &shape,
          const FleetSpec &spec)
{
    FleetCost cost;
    UnitCounts units = design.unitsFor(shape);
    cost.dies = spec.racks * spec.dies_per_rack;
    cost.die_area_mm2 = design.areaMm2(units);
    cost.die_power_w = design.powerWatts(units);
    cost.total_area_mm2 =
        cost.die_area_mm2 * static_cast<double>(cost.dies);
    cost.total_power_w =
        cost.die_power_w * static_cast<double>(cost.dies) +
        spec.rack_overhead_w * static_cast<double>(spec.racks);
    cost.solve_seconds = design.solveTimeSeconds(shape);
    cost.solves_per_second =
        cost.solve_seconds > 0.0
            ? static_cast<double>(cost.dies) / cost.solve_seconds
            : 0.0;
    return cost;
}

AcceleratorDesign
prototypeDesign()
{
    return AcceleratorDesign(20e3, 8);
}

AcceleratorDesign
design80kHz()
{
    return AcceleratorDesign(80e3, 12);
}

AcceleratorDesign
design320kHz()
{
    return AcceleratorDesign(320e3, 12);
}

AcceleratorDesign
design1300kHz()
{
    return AcceleratorDesign(1.3e6, 12);
}

} // namespace aa::cost
