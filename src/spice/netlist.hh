/**
 * @file
 * SPICE-style netlist front end: the deck model and the parser.
 *
 * This is the entry point of the circuit workload family — the first
 * irregular-sparsity producer the reproduction serves (everything
 * before it was a structured Poisson stencil). A deck is parsed into
 * a flat component list over an interned node table; spice/mna.hh
 * turns that into the modified-nodal-analysis system G v = i the
 * accelerator solves.
 *
 * Dialect (the subset circuit matrices need, not a full simulator):
 *  - first line is the title (classic SPICE), `.end` terminates;
 *  - components: `Rxxx n+ n- value`, `Cxxx`, `Lxxx`,
 *    `Vxxx n+ n- [DC] value`, `Ixxx n+ n- [DC] value`;
 *  - `.subckt NAME port...` / `.ends` definitions and `Xinst
 *    node... NAME` instantiation, flattened with `inst.` prefixes on
 *    internal nodes and component names (nesting allowed, recursion
 *    rejected);
 *  - engineering suffixes (`1k`, `2.2u`, `3meg`); trailing unit text
 *    (`10kOhm`) is ignored as in SPICE;
 *  - `*` comment lines, `;` / `$ ` inline comments, `+` line
 *    continuations;
 *  - ground is node `0` (aliases `gnd`, `ground`).
 *
 * Error contract: the parser NEVER crashes on malformed input. Every
 * problem — unknown card, bad value, duplicate component name,
 * zero-valued resistor, dangling node, missing ground or `.end` —
 * becomes a Diagnostic carrying the 1-based source line, and
 * ParseResult::ok says whether the deck is usable. Diagnostics are
 * deterministic: same deck text, same list.
 *
 * Determinism contract: non-ground nodes are interned in first-
 * appearance order of the flattened deck, so re-parsing the same text
 * always yields the same node indices, the same assembled CSR
 * pattern, and therefore the same compiler::sparsityHash — which is
 * what lets the service's program cache recognize repeat circuit
 * traffic.
 */

#ifndef AA_SPICE_NETLIST_HH
#define AA_SPICE_NETLIST_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace aa::spice {

/** Component classes the MNA assembler can stamp. */
enum class ComponentKind {
    Resistor,      ///< R: conductance stamp
    Capacitor,     ///< C: open in DC, C/dt companion in transient
    Inductor,      ///< L: short (branch) in DC, dt/L in transient
    VoltageSource, ///< V: branch row (or node elimination)
    CurrentSource, ///< I: RHS injection
};

const char *name(ComponentKind kind);

/** One flattened two-terminal component. */
struct Component {
    ComponentKind kind = ComponentKind::Resistor;
    std::string name;         ///< hierarchical, e.g. "x2.r1"
    std::size_t node_pos = 0; ///< interned node id (0 = ground)
    std::size_t node_neg = 0;
    double value = 0.0;       ///< ohms / farads / henries / V / A
    std::size_t line = 0;     ///< 1-based deck line (diagnostics)
};

/** A parsed, flattened deck. Node id 0 is always ground; non-ground
 *  nodes are 1..nodeCount() in first-appearance order. */
struct Netlist {
    std::string title;
    std::vector<Component> components;
    /** Interned node names; node_names[0] == "0" (ground). */
    std::vector<std::string> node_names;

    /** Non-ground node count (the MNA node-voltage unknowns). */
    std::size_t
    nodeCount() const
    {
        return node_names.empty() ? 0 : node_names.size() - 1;
    }
};

/** One parser or assembler finding, anchored to a deck line. */
struct Diagnostic {
    enum class Severity { Warning, Error };
    Severity severity = Severity::Error;
    std::size_t line = 0; ///< 1-based; 0 = whole-deck finding
    std::string message;

    /** "error: line 12: duplicate component name 'r1'" */
    std::string str() const;
};

/** Outcome of a parse: the deck (possibly partial) + findings. */
struct ParseResult {
    Netlist netlist;
    std::vector<Diagnostic> diagnostics;
    /** True when no Error-severity diagnostic was produced. */
    bool ok = false;

    std::size_t errorCount() const;
    /** All diagnostics joined with newlines (log/exception text). */
    std::string summary() const;
};

/** Parse a deck from a stream. Never throws on malformed input. */
ParseResult parseNetlist(std::istream &in);

/** Parse a deck held in a string (generated decks, tests). */
ParseResult parseNetlistString(const std::string &text);

/** Parse a deck file; a missing file is an Error diagnostic. */
ParseResult parseNetlistFile(const std::string &path);

/**
 * Parse one SPICE number with engineering suffix (`1k`, `2.2u`,
 * `3meg`, `10kOhm`). Returns false (and leaves *out untouched) on
 * malformed input. Suffixes: f p n u m k meg g t, case-insensitive;
 * anything after a recognized suffix (or after the number when no
 * suffix matches) is ignored, per SPICE convention.
 */
bool parseSpiceValue(const std::string &token, double *out);

} // namespace aa::spice

#endif // AA_SPICE_NETLIST_HH
