#include "aa/spice/netlist.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace aa::spice {

const char *
name(ComponentKind kind)
{
    switch (kind) {
    case ComponentKind::Resistor: return "resistor";
    case ComponentKind::Capacitor: return "capacitor";
    case ComponentKind::Inductor: return "inductor";
    case ComponentKind::VoltageSource: return "voltage source";
    case ComponentKind::CurrentSource: return "current source";
    }
    return "component";
}

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    os << (severity == Severity::Error ? "error" : "warning");
    if (line)
        os << ": line " << line;
    os << ": " << message;
    return os.str();
}

std::size_t
ParseResult::errorCount() const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        if (d.severity == Diagnostic::Severity::Error)
            ++n;
    return n;
}

std::string
ParseResult::summary() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        if (i)
            os << "\n";
        os << diagnostics[i].str();
    }
    return os.str();
}

bool
parseSpiceValue(const std::string &token, double *out)
{
    if (token.empty())
        return false;
    const char *begin = token.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin)
        return false; // no leading number at all
    // Engineering suffix; anything after it is unit text ("kOhm").
    std::string rest;
    for (const char *p = end; *p; ++p)
        rest.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
    double mult = 1.0;
    if (!rest.empty()) {
        if (rest.rfind("meg", 0) == 0)
            mult = 1e6; // before 'm': "meg" outranks milli
        else if (rest[0] == 'f')
            mult = 1e-15;
        else if (rest[0] == 'p')
            mult = 1e-12;
        else if (rest[0] == 'n')
            mult = 1e-9;
        else if (rest[0] == 'u')
            mult = 1e-6;
        else if (rest[0] == 'm')
            mult = 1e-3;
        else if (rest[0] == 'k')
            mult = 1e3;
        else if (rest[0] == 'g')
            mult = 1e9;
        else if (rest[0] == 't')
            mult = 1e12;
    }
    *out = v * mult;
    return true;
}

namespace {

/** One logical deck line (continuations joined), tokenized. */
struct Card {
    std::size_t line = 0; ///< first physical line of the card
    std::vector<std::string> tokens;
};

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return out;
}

bool
isGroundName(const std::string &lower)
{
    return lower == "0" || lower == "gnd" || lower == "ground";
}

/** A `.subckt` body: ports + the cards between the delimiters. */
struct SubcktDef {
    std::size_t line = 0;
    std::vector<std::string> ports; ///< lowercase port node names
    std::vector<Card> body;
};

/** Everything the parsing pass accumulates before expansion. */
struct DeckSource {
    std::string title;
    std::vector<Card> top;
    std::unordered_map<std::string, SubcktDef> subckts;
};

class Parser
{
  public:
    explicit Parser(std::istream &in) : in_(in) {}

    ParseResult
    run()
    {
        readCards();
        if (result_.errorCount() == 0)
            expand();
        if (result_.errorCount() == 0)
            validate();
        result_.ok = result_.errorCount() == 0;
        return std::move(result_);
    }

  private:
    void
    error(std::size_t line, std::string msg)
    {
        result_.diagnostics.push_back(
            {Diagnostic::Severity::Error, line, std::move(msg)});
    }

    void
    warning(std::size_t line, std::string msg)
    {
        result_.diagnostics.push_back(
            {Diagnostic::Severity::Warning, line, std::move(msg)});
    }

    /** Strip `;` / `$` inline comments from a physical line. */
    static std::string
    stripInlineComment(const std::string &line)
    {
        std::size_t cut = line.find_first_of(";$");
        return cut == std::string::npos ? line : line.substr(0, cut);
    }

    /**
     * Phase 1: physical lines -> logical cards. The title line, `*`
     * comment lines, `+` continuations and the `.subckt`/`.ends`/
     * `.end` structure are all resolved here.
     */
    void
    readCards()
    {
        std::string phys;
        std::size_t lineno = 0;
        bool have_title = false;
        bool saw_end = false;
        std::vector<Card> cards;

        Card pending; // card being continued
        auto flush = [&] {
            if (!pending.tokens.empty())
                cards.push_back(std::move(pending));
            pending = Card{};
        };

        while (std::getline(in_, phys)) {
            ++lineno;
            if (!phys.empty() && phys.back() == '\r')
                phys.pop_back();
            if (!have_title) {
                src_.title = phys;
                have_title = true;
                continue;
            }
            if (!phys.empty() && phys[0] == '*')
                continue; // comment line
            std::string body = stripInlineComment(phys);
            std::istringstream toks(body);
            std::string tok;
            std::vector<std::string> tokens;
            while (toks >> tok)
                tokens.push_back(lowered(tok));
            if (tokens.empty())
                continue;
            if (tokens[0][0] == '+') {
                if (pending.tokens.empty()) {
                    error(lineno, "continuation line with nothing to "
                                  "continue");
                    continue;
                }
                tokens[0].erase(0, 1); // "+rest" glues a token
                for (auto &t : tokens)
                    if (!t.empty())
                        pending.tokens.push_back(std::move(t));
                continue;
            }
            flush();
            pending.line = lineno;
            pending.tokens = std::move(tokens);
            if (pending.tokens[0] == ".end") {
                pending = Card{};
                saw_end = true;
                break;
            }
        }
        flush();
        if (!have_title)
            error(0, "empty deck (no title line)");
        if (!saw_end)
            error(lineno ? lineno : 1,
                  "missing .end (deck ends at line " +
                      std::to_string(lineno) + ")");

        // Phase 1b: peel `.subckt` blocks out of the card stream.
        SubcktDef def;
        std::string def_name;
        bool in_def = false;
        for (Card &c : cards) {
            const std::string &head = c.tokens[0];
            if (head == ".subckt") {
                if (in_def) {
                    error(c.line,
                          "nested .subckt definition (close '" +
                              def_name + "' with .ends first)");
                    continue;
                }
                if (c.tokens.size() < 3) {
                    error(c.line, ".subckt needs a name and at least "
                                  "one port");
                    continue;
                }
                in_def = true;
                def = SubcktDef{};
                def.line = c.line;
                def_name = c.tokens[1];
                def.ports.assign(c.tokens.begin() + 2,
                                 c.tokens.end());
                continue;
            }
            if (head == ".ends") {
                if (!in_def) {
                    error(c.line, ".ends without a matching .subckt");
                    continue;
                }
                in_def = false;
                std::size_t def_line = def.line;
                if (!src_.subckts.emplace(def_name, std::move(def))
                         .second)
                    error(def_line, "duplicate .subckt definition '" +
                                        def_name + "'");
                continue;
            }
            if (in_def)
                def.body.push_back(std::move(c));
            else
                src_.top.push_back(std::move(c));
        }
        if (in_def)
            error(def.line,
                  ".subckt '" + def_name + "' never closed (.ends)");
    }

    std::size_t
    internNode(const std::string &lower_name)
    {
        if (isGroundName(lower_name))
            return 0;
        auto [it, fresh] =
            node_ids_.emplace(lower_name, node_names_.size());
        if (fresh)
            node_names_.push_back(lower_name);
        return it->second;
    }

    /** Map a body node through an instance's port/prefix scheme. */
    static std::string
    scopedNode(const std::string &node,
               const std::unordered_map<std::string, std::string>
                   &port_map,
               const std::string &prefix)
    {
        if (isGroundName(node))
            return node; // ground is global
        auto it = port_map.find(node);
        if (it != port_map.end())
            return it->second;
        return prefix + node;
    }

    /**
     * Phase 2: expand X cards (depth-first, recursion-checked) and
     * turn every component card into a flattened Component. Node
     * interning happens here, in flattened-deck order, which is what
     * makes re-parses produce identical indices.
     */
    void
    expandCards(const std::vector<Card> &cards,
                const std::unordered_map<std::string, std::string>
                    &port_map,
                const std::string &prefix,
                std::vector<std::string> &active)
    {
        for (const Card &c : cards) {
            const std::string &head = c.tokens[0];
            if (head[0] == '.') {
                warning(c.line,
                        "directive '" + head + "' ignored");
                continue;
            }
            if (head[0] == 'x') {
                expandInstance(c, port_map, prefix, active);
                continue;
            }
            parseComponent(c, port_map, prefix);
        }
    }

    void
    expandInstance(const Card &c,
                   const std::unordered_map<std::string, std::string>
                       &outer_ports,
                   const std::string &prefix,
                   std::vector<std::string> &active)
    {
        if (c.tokens.size() < 3) {
            error(c.line, "subcircuit instance needs nodes and a "
                          ".subckt name");
            return;
        }
        const std::string &sub_name = c.tokens.back();
        auto it = src_.subckts.find(sub_name);
        if (it == src_.subckts.end()) {
            error(c.line, "unknown .subckt '" + sub_name + "'");
            return;
        }
        const SubcktDef &def = it->second;
        std::size_t given = c.tokens.size() - 2;
        if (given != def.ports.size()) {
            error(c.line, "instance '" + c.tokens[0] + "' passes " +
                              std::to_string(given) + " nodes but '" +
                              sub_name + "' declares " +
                              std::to_string(def.ports.size()) +
                              " ports");
            return;
        }
        if (std::find(active.begin(), active.end(), sub_name) !=
            active.end()) {
            error(c.line, "recursive .subckt instantiation of '" +
                              sub_name + "'");
            return;
        }
        std::unordered_map<std::string, std::string> port_map;
        for (std::size_t p = 0; p < def.ports.size(); ++p)
            port_map[def.ports[p]] =
                scopedNode(c.tokens[1 + p], outer_ports, prefix);
        active.push_back(sub_name);
        expandCards(def.body, port_map,
                    prefix + c.tokens[0] + ".", active);
        active.pop_back();
    }

    void
    parseComponent(const Card &c,
                   const std::unordered_map<std::string, std::string>
                       &port_map,
                   const std::string &prefix)
    {
        ComponentKind kind;
        switch (c.tokens[0][0]) {
        case 'r': kind = ComponentKind::Resistor; break;
        case 'c': kind = ComponentKind::Capacitor; break;
        case 'l': kind = ComponentKind::Inductor; break;
        case 'v': kind = ComponentKind::VoltageSource; break;
        case 'i': kind = ComponentKind::CurrentSource; break;
        default:
            error(c.line, "unknown card '" + c.tokens[0] +
                              "' (supported: R C L V I X .subckt)");
            return;
        }
        if (c.tokens.size() < 4) {
            error(c.line, std::string(name(kind)) + " '" +
                              c.tokens[0] +
                              "' needs two nodes and a value");
            return;
        }
        std::size_t value_at = 3;
        if ((kind == ComponentKind::VoltageSource ||
             kind == ComponentKind::CurrentSource) &&
            c.tokens[3] == "dc") {
            if (c.tokens.size() < 5) {
                error(c.line, "source '" + c.tokens[0] +
                                  "' has DC keyword but no value");
                return;
            }
            value_at = 4;
        }
        double value = 0.0;
        if (!parseSpiceValue(c.tokens[value_at], &value)) {
            error(c.line, "malformed value '" + c.tokens[value_at] +
                              "' on '" + c.tokens[0] + "'");
            return;
        }
        if (c.tokens.size() > value_at + 1)
            warning(c.line, "trailing tokens on '" + c.tokens[0] +
                                "' ignored");

        Component comp;
        comp.kind = kind;
        comp.name = prefix + c.tokens[0];
        comp.line = c.line;
        comp.value = value;
        std::string pos = scopedNode(c.tokens[1], port_map, prefix);
        std::string neg = scopedNode(c.tokens[2], port_map, prefix);

        if (!names_.insert(comp.name).second) {
            error(c.line,
                  "duplicate component name '" + comp.name + "'");
            return;
        }
        if (kind == ComponentKind::Resistor && value == 0.0) {
            error(c.line, "zero-valued resistor '" + comp.name +
                              "' (infinite conductance)");
            return;
        }
        if ((kind == ComponentKind::Resistor ||
             kind == ComponentKind::Inductor) &&
            value < 0.0) {
            error(c.line, std::string(name(kind)) + " '" + comp.name +
                              "' has negative value");
            return;
        }
        if (kind == ComponentKind::Capacitor && value < 0.0) {
            error(c.line, "capacitor '" + comp.name +
                              "' has negative value");
            return;
        }
        if (kind == ComponentKind::Inductor && value == 0.0) {
            error(c.line, "zero-valued inductor '" + comp.name + "'");
            return;
        }
        if (pos == neg) {
            if (kind == ComponentKind::VoltageSource &&
                value != 0.0) {
                error(c.line, "voltage source '" + comp.name +
                                  "' shorts a node to itself");
                return;
            }
            warning(c.line, "'" + comp.name +
                                "' connects a node to itself "
                                "(no effect)");
        }
        comp.node_pos = internNode(pos);
        comp.node_neg = internNode(neg);
        netlist_.components.push_back(std::move(comp));
    }

    void
    expand()
    {
        node_names_.push_back("0"); // ground is always id 0
        std::vector<std::string> active;
        expandCards(src_.top, {}, "", active);
        netlist_.title = src_.title;
        netlist_.node_names = node_names_;
        result_.netlist = std::move(netlist_);
    }

    /** Whole-deck structural checks on the flattened netlist. */
    void
    validate()
    {
        const Netlist &nl = result_.netlist;
        if (nl.components.empty()) {
            error(0, "deck has no components");
            return;
        }
        // Terminal counts per node; a non-ground node with a single
        // connection has a singular MNA row (dangling).
        std::vector<std::size_t> touches(nl.node_names.size(), 0);
        std::vector<std::size_t> first_line(nl.node_names.size(), 0);
        for (const Component &c : nl.components) {
            for (std::size_t node : {c.node_pos, c.node_neg}) {
                ++touches[node];
                if (!first_line[node])
                    first_line[node] = c.line;
            }
        }
        if (touches[0] == 0)
            error(0, "no component connects to ground (node 0)");
        for (std::size_t k = 1; k < touches.size(); ++k)
            if (touches[k] < 2)
                error(first_line[k],
                      "dangling node '" + nl.node_names[k] +
                          "' (single connection)");
    }

    std::istream &in_;
    DeckSource src_;
    Netlist netlist_;
    ParseResult result_;
    std::unordered_map<std::string, std::size_t> node_ids_;
    std::vector<std::string> node_names_;
    std::unordered_set<std::string> names_;
};

} // namespace

ParseResult
parseNetlist(std::istream &in)
{
    return Parser(in).run();
}

ParseResult
parseNetlistString(const std::string &text)
{
    std::istringstream in(text);
    return parseNetlist(in);
}

ParseResult
parseNetlistFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ParseResult r;
        r.diagnostics.push_back({Diagnostic::Severity::Error, 0,
                                 "cannot open '" + path + "'"});
        return r;
    }
    return parseNetlist(in);
}

} // namespace aa::spice
