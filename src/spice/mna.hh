/**
 * @file
 * Modified nodal analysis: turn a parsed netlist into the sparse
 * linear system G v = i the accelerator solves.
 *
 * Two assembly shapes, chosen by MnaOptions::reduce:
 *
 *  - **Reduced** (default): voltage sources that pin a node relative
 *    to ground (directly, or through a chain of sources) are
 *    eliminated — the pinned node's voltage is known, its conductance
 *    column moves to the right-hand side, and no branch-current rows
 *    exist. For a connected conductive network the result is
 *    symmetric positive definite, which is exactly what the analog
 *    gradient flow du/dt = i - G v needs to converge. A source that
 *    floats relative to ground cannot be reduced and is reported as
 *    a Diagnostic (use full MNA for those decks).
 *
 *  - **Full MNA** (reduce = false): every voltage source (and, in DC,
 *    every inductor — an ideal short) contributes a branch-current
 *    unknown and a constraint row. The system is symmetric but
 *    indefinite (a saddle point); it is the interchange/export shape
 *    and the digital-LU ground truth, not the analog path.
 *
 * Analysis modes: Dc opens capacitors and shorts inductors;
 * Transient stamps the backward-Euler companion conductances C/dt
 * and dt/L (history currents taken as zero — this assembles the
 * timestep *matrix*, the quantity the accelerator is programmed
 * with; an actual time loop would rebind only the RHS each step).
 *
 * Stamps (SPICE sign conventions):
 *  - conductance y between p and n: G[p,p]+=y, G[n,n]+=y,
 *    G[p,n]-=y, G[n,p]-=y (ground rows/columns dropped);
 *  - current source `I p n J`: J flows from p through the source to
 *    n, so i[p]-=J, i[n]+=J;
 *  - voltage source `V p n E` (full MNA): branch row k couples
 *    +v_p -v_n = E with ±1 entries, symmetric across the diagonal.
 *
 * Determinism: unknown ordering is node-id order (= first-appearance
 * order in the deck) followed by branch order (= component order),
 * so re-assembling a re-parse of the same deck yields a bit-identical
 * CSR pattern and the same compiler::sparsityHash.
 *
 * Assembly never crashes on a bad deck: structural problems (floating
 * sources, source loops pinning a node twice, islands with no
 * conductive path to a known voltage) come back as Diagnostics with
 * the offending component's deck line.
 */

#ifndef AA_SPICE_MNA_HH
#define AA_SPICE_MNA_HH

#include <cstddef>
#include <string>
#include <vector>

#include "aa/la/csr_matrix.hh"
#include "aa/la/vector.hh"
#include "aa/spice/netlist.hh"

namespace aa::spice {

/** What the companion models should do with C and L. */
enum class AnalysisMode {
    Dc,        ///< capacitors open, inductors short
    Transient, ///< backward-Euler companions: C/dt and dt/L
};

/** Assembly configuration. */
struct MnaOptions {
    AnalysisMode mode = AnalysisMode::Dc;
    /** Companion timestep (Transient mode only). */
    double dt = 1e-6;
    /** Eliminate ground-referenced voltage sources (SPD shape) vs
     *  keep branch rows (full MNA, indefinite). */
    bool reduce = true;
};

/** The assembled system G v = i plus the index bookkeeping needed to
 *  go from solution vector entries back to named node voltages. */
struct MnaSystem {
    la::CsrMatrix g; ///< square, unknowns() x unknowns()
    la::Vector i;    ///< right-hand side

    /** Unknown index -> human name: node names first, then
     *  "i(vsource)" branch currents (full MNA only). */
    std::vector<std::string> unknown_names;
    std::size_t node_unknowns = 0;
    std::size_t branch_unknowns = 0;
    bool reduced = false;

    /** Per netlist node id: index into the solution vector, or
     *  SIZE_MAX when the node's voltage is known (ground, or pinned
     *  by an eliminated source — see fixed_voltage). */
    std::vector<std::size_t> unknown_of_node;
    /** Per netlist node id: the known voltage of eliminated nodes
     *  (0.0 for ground); only meaningful where unknown_of_node is
     *  SIZE_MAX. */
    std::vector<double> fixed_voltage;

    std::size_t
    unknowns() const
    {
        return node_unknowns + branch_unknowns;
    }

    /**
     * Expand a solution of G v = i into per-node voltages, indexed by
     * netlist node id - 1 (ground excluded): eliminated nodes report
     * their pinned voltage, the rest read from u.
     */
    la::Vector nodeVoltages(const la::Vector &u) const;
};

/** Assembly outcome: the system (valid when ok) + findings. */
struct AssembleResult {
    MnaSystem system;
    std::vector<Diagnostic> diagnostics;
    bool ok = false;

    std::string summary() const;
};

/** Assemble G v = i from a flattened netlist. */
AssembleResult assembleMna(const Netlist &netlist,
                           const MnaOptions &opts = {});

/**
 * Parse + assemble in one step — the common front door. Parser
 * diagnostics and assembler diagnostics land in the same list; ok
 * requires both stages clean.
 */
AssembleResult assembleDeck(const std::string &deck_text,
                            const MnaOptions &opts = {});

} // namespace aa::spice

#endif // AA_SPICE_MNA_HH
