#include "aa/spice/mna.hh"

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <utility>

namespace aa::spice {

namespace {

constexpr std::size_t kNoUnknown = SIZE_MAX;

/** Union-find over node ids for the ground-connectivity check. */
class DisjointSet
{
  public:
    explicit DisjointSet(std::size_t n) : parent_(n)
    {
        for (std::size_t k = 0; k < n; ++k)
            parent_[k] = k;
    }

    std::size_t
    find(std::size_t a)
    {
        while (parent_[a] != a) {
            parent_[a] = parent_[parent_[a]];
            a = parent_[a];
        }
        return a;
    }

    void
    unite(std::size_t a, std::size_t b)
    {
        parent_[find(a)] = find(b);
    }

  private:
    std::vector<std::size_t> parent_;
};

/** Is this component a voltage constraint in the given mode? */
bool
isVoltageLike(const Component &c, AnalysisMode mode)
{
    if (c.kind == ComponentKind::VoltageSource)
        return true;
    return c.kind == ComponentKind::Inductor &&
           mode == AnalysisMode::Dc; // ideal short = 0 V source
}

/** Constraint value of a voltage-like component. */
double
constraintVolts(const Component &c)
{
    return c.kind == ComponentKind::VoltageSource ? c.value : 0.0;
}

/** Conductance this component stamps in the given mode; 0 = none. */
double
conductanceOf(const Component &c, const MnaOptions &opts)
{
    switch (c.kind) {
    case ComponentKind::Resistor:
        return 1.0 / c.value;
    case ComponentKind::Capacitor:
        return opts.mode == AnalysisMode::Transient
                   ? c.value / opts.dt
                   : 0.0;
    case ComponentKind::Inductor:
        return opts.mode == AnalysisMode::Transient
                   ? opts.dt / c.value
                   : 0.0;
    default:
        return 0.0;
    }
}

class Assembler
{
  public:
    Assembler(const Netlist &netlist, const MnaOptions &opts)
        : nl_(netlist), opts_(opts)
    {}

    AssembleResult
    run()
    {
        std::size_t nodes = nl_.node_names.size(); // incl. ground
        pinned_.assign(nodes, false);
        pin_volts_.assign(nodes, 0.0);
        pinned_[0] = true; // ground

        if (opts_.reduce)
            propagatePins();
        if (errors_ == 0)
            numberUnknowns();
        if (errors_ == 0)
            stamp();
        if (errors_ == 0)
            checkAnchored();
        result_.ok = errors_ == 0;
        if (!result_.ok)
            result_.system = MnaSystem{};
        return std::move(result_);
    }

  private:
    void
    error(std::size_t line, std::string msg)
    {
        ++errors_;
        result_.diagnostics.push_back(
            {Diagnostic::Severity::Error, line, std::move(msg)});
    }

    /**
     * Reduce mode: fixpoint over voltage-like components — any with
     * one known endpoint pins the other. Left-over floating sources
     * and conflicting pins are errors.
     */
    void
    propagatePins()
    {
        std::vector<const Component *> vlike;
        for (const Component &c : nl_.components)
            if (isVoltageLike(c, opts_.mode))
                vlike.push_back(&c);

        auto pin = [&](std::size_t node, double volts,
                       const Component &why) {
            if (node == 0) {
                if (std::abs(volts) > 0.0)
                    error(why.line,
                          "'" + why.name +
                              "' forces ground to " +
                              std::to_string(volts) + " V");
                return;
            }
            if (pinned_[node]) {
                if (std::abs(pin_volts_[node] - volts) > 1e-12)
                    error(why.line,
                          "node '" + nl_.node_names[node] +
                              "' pinned to conflicting voltages by "
                              "'" +
                              why.name + "'");
                return;
            }
            pinned_[node] = true;
            pin_volts_[node] = volts;
        };

        std::vector<bool> done(vlike.size(), false);
        bool progress = true;
        while (progress) {
            progress = false;
            for (std::size_t k = 0; k < vlike.size(); ++k) {
                if (done[k])
                    continue;
                const Component &c = *vlike[k];
                bool pos_known = pinned_[c.node_pos];
                bool neg_known = pinned_[c.node_neg];
                if (!pos_known && !neg_known)
                    continue;
                double e = constraintVolts(c);
                if (pos_known && neg_known) {
                    double gap = pin_volts_[c.node_pos] -
                                 pin_volts_[c.node_neg] - e;
                    if (std::abs(gap) > 1e-12)
                        error(c.line,
                              "'" + c.name +
                                  "' conflicts with voltages "
                                  "already pinned on its nodes");
                } else if (pos_known) {
                    pin(c.node_neg, pin_volts_[c.node_pos] - e, c);
                } else {
                    pin(c.node_pos, pin_volts_[c.node_neg] + e, c);
                }
                done[k] = true;
                progress = true;
            }
        }
        for (std::size_t k = 0; k < vlike.size(); ++k)
            if (!done[k])
                error(vlike[k]->line,
                      "'" + vlike[k]->name +
                          "' floats relative to ground; reduced "
                          "assembly cannot eliminate it (use full "
                          "MNA: reduce = false)");
    }

    void
    numberUnknowns()
    {
        MnaSystem &sys = result_.system;
        std::size_t nodes = nl_.node_names.size();
        sys.unknown_of_node.assign(nodes, kNoUnknown);
        sys.fixed_voltage.assign(nodes, 0.0);
        for (std::size_t id = 1; id < nodes; ++id) {
            if (opts_.reduce && pinned_[id]) {
                sys.fixed_voltage[id] = pin_volts_[id];
                continue;
            }
            sys.unknown_of_node[id] = sys.unknown_names.size();
            sys.unknown_names.push_back(nl_.node_names[id]);
        }
        sys.node_unknowns = sys.unknown_names.size();
        if (!opts_.reduce) {
            for (const Component &c : nl_.components)
                if (isVoltageLike(c, opts_.mode)) {
                    branch_of_.emplace_back(
                        &c, sys.unknown_names.size());
                    sys.unknown_names.push_back("i(" + c.name + ")");
                }
        }
        sys.branch_unknowns =
            sys.unknown_names.size() - sys.node_unknowns;
        sys.reduced = opts_.reduce;
        if (sys.unknowns() == 0)
            error(0, "deck has no unknowns (every node is ground or "
                     "pinned by a source); nothing to solve");
    }

    void
    stamp()
    {
        MnaSystem &sys = result_.system;
        std::size_t n = sys.unknowns();
        std::vector<la::Triplet> trip;
        trip.reserve(4 * nl_.components.size());
        la::Vector rhs(n);

        auto u_of = [&](std::size_t node) {
            return sys.unknown_of_node[node];
        };
        auto volts_of = [&](std::size_t node) {
            return node == 0 ? 0.0 : sys.fixed_voltage[node];
        };

        for (const Component &c : nl_.components) {
            double y = conductanceOf(c, opts_);
            if (y != 0.0 && c.node_pos != c.node_neg) {
                std::size_t up = u_of(c.node_pos);
                std::size_t un = u_of(c.node_neg);
                if (up != kNoUnknown)
                    trip.push_back({up, up, y});
                if (un != kNoUnknown)
                    trip.push_back({un, un, y});
                if (up != kNoUnknown && un != kNoUnknown) {
                    trip.push_back({up, un, -y});
                    trip.push_back({un, up, -y});
                } else if (up != kNoUnknown) {
                    rhs[up] += y * volts_of(c.node_neg);
                } else if (un != kNoUnknown) {
                    rhs[un] += y * volts_of(c.node_pos);
                }
            }
            if (c.kind == ComponentKind::CurrentSource) {
                std::size_t up = u_of(c.node_pos);
                std::size_t un = u_of(c.node_neg);
                if (up != kNoUnknown)
                    rhs[up] -= c.value;
                if (un != kNoUnknown)
                    rhs[un] += c.value;
            }
        }
        // Branch rows (full MNA): +- 1 couplings and the source EMF.
        for (auto [cp, row] : branch_of_) {
            const Component &c = *cp;
            std::size_t up = u_of(c.node_pos);
            std::size_t un = u_of(c.node_neg);
            if (up != kNoUnknown) {
                trip.push_back({up, row, 1.0});
                trip.push_back({row, up, 1.0});
            }
            if (un != kNoUnknown) {
                trip.push_back({un, row, -1.0});
                trip.push_back({row, un, -1.0});
            }
            rhs[row] = constraintVolts(c);
        }

        sys.g = la::CsrMatrix::fromTriplets(n, n, std::move(trip));
        sys.i = std::move(rhs);
    }

    /**
     * Every node-voltage unknown must reach a known voltage (ground
     * or a pinned node) through components that actually constrain
     * it — conductances and voltage-like branches. Current sources
     * inject into a floating island without fixing its potential:
     * that island's sub-block of G is singular.
     */
    void
    checkAnchored()
    {
        MnaSystem &sys = result_.system;
        std::size_t nodes = nl_.node_names.size();
        DisjointSet ds(nodes);
        for (const Component &c : nl_.components) {
            bool connects = conductanceOf(c, opts_) != 0.0 ||
                            isVoltageLike(c, opts_.mode);
            if (connects)
                ds.unite(c.node_pos, c.node_neg);
        }
        std::vector<bool> anchored(nodes, false);
        for (std::size_t id = 0; id < nodes; ++id)
            if (id == 0 || (opts_.reduce && pinned_[id]))
                anchored[ds.find(id)] = true;
        std::vector<std::size_t> first_line(nodes, 0);
        for (const Component &c : nl_.components)
            for (std::size_t node : {c.node_pos, c.node_neg})
                if (!first_line[node])
                    first_line[node] = c.line;
        for (std::size_t id = 1; id < nodes; ++id) {
            if (sys.unknown_of_node[id] == kNoUnknown)
                continue;
            if (!anchored[ds.find(id)])
                error(first_line[id],
                      "node '" + nl_.node_names[id] +
                          "' has no conductive path to a known "
                          "voltage (floating island)");
        }
    }

    const Netlist &nl_;
    MnaOptions opts_;
    AssembleResult result_;
    std::vector<bool> pinned_;      ///< per node id (reduce mode)
    std::vector<double> pin_volts_; ///< per node id
    std::vector<std::pair<const Component *, std::size_t>> branch_of_;
    std::size_t errors_ = 0;
};

} // namespace

la::Vector
MnaSystem::nodeVoltages(const la::Vector &u) const
{
    std::size_t nodes =
        unknown_of_node.empty() ? 0 : unknown_of_node.size() - 1;
    la::Vector v(nodes);
    for (std::size_t id = 1; id <= nodes; ++id) {
        std::size_t k = unknown_of_node[id];
        v[id - 1] = k == kNoUnknown ? fixed_voltage[id] : u[k];
    }
    return v;
}

std::string
AssembleResult::summary() const
{
    std::ostringstream os;
    for (std::size_t k = 0; k < diagnostics.size(); ++k) {
        if (k)
            os << "\n";
        os << diagnostics[k].str();
    }
    return os.str();
}

AssembleResult
assembleMna(const Netlist &netlist, const MnaOptions &opts)
{
    return Assembler(netlist, opts).run();
}

AssembleResult
assembleDeck(const std::string &deck_text, const MnaOptions &opts)
{
    ParseResult parsed = parseNetlistString(deck_text);
    if (!parsed.ok) {
        AssembleResult r;
        r.diagnostics = std::move(parsed.diagnostics);
        return r;
    }
    AssembleResult r = assembleMna(parsed.netlist, opts);
    // Keep parser warnings visible next to assembler findings.
    r.diagnostics.insert(r.diagnostics.begin(),
                         parsed.diagnostics.begin(),
                         parsed.diagnostics.end());
    return r;
}

} // namespace aa::spice
