/**
 * @file
 * Deterministic SPICE deck generators. Tests and benches need circuit
 * workloads without external files, and they need the *parser* in the
 * loop (not hand-built component lists) — so every generator emits
 * actual deck text, engineering suffixes and all, and callers run it
 * through parseNetlist/assembleDeck like any user deck.
 *
 * All generators are pure functions of their spec (the random
 * topology of a seed), so a (generator, spec) pair is a reproducible
 * workload name: the same deck text, the same interned node order,
 * the same sparsityHash, every time, on every run.
 *
 * The electrical shapes are chosen to make the reduced MNA system
 * symmetric positive definite (a ground anchor always exists), which
 * is what the analog gradient flow requires, while spanning the wide
 * component-value ranges (ohms to megaohms) that push the range-
 * scaling/exception ladder harder than any unit-coefficient stencil.
 */

#ifndef AA_SPICE_GENERATE_HH
#define AA_SPICE_GENERATE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace aa::spice {

/** RC ladder: V source -> series R chain, C to ground per tap. */
struct LadderSpec {
    std::size_t sections = 8; ///< taps (= non-source unknowns in DC)
    double r_ohms = 1e3;      ///< series resistance per section
    double c_farads = 2.2e-6; ///< tap capacitance
    double drive_volts = 1.0; ///< grounded source at the input
    /** Geometric per-section resistance growth (1.0 = uniform);
     *  > 1 stretches the entry dynamic range section by section. */
    double r_growth = 1.0;
};
std::string ladderDeck(const LadderSpec &spec = {});

/** Resistor grid: rows x cols nodes, neighbor resistors, a ground-
 *  anchor resistor at one corner, current injection at the other. */
struct GridSpec {
    std::size_t rows = 4;
    std::size_t cols = 4;
    double r_h_ohms = 1e3;     ///< horizontal edges
    double r_v_ohms = 2.2e3;   ///< vertical edges
    double r_anchor_ohms = 470.0; ///< corner (0,0) to ground
    double c_farads = 1e-6;    ///< per-node capacitance to ground
    double inject_amps = 1e-3; ///< into the far corner
};
std::string gridDeck(const GridSpec &spec = {});

/** Chained subcircuit mesh: every cell is a `.subckt` pi-section
 *  instance (internal node and all), plus long-range bracing
 *  resistors across the chain — exercises subckt flattening and
 *  produces an irregular banded-plus-skips pattern. */
struct MeshSpec {
    std::size_t cells = 6;
    double r_ohms = 1.5e3;  ///< pi-section series resistance
    double c_farads = 1e-7; ///< pi-section midpoint capacitance
    double r_brace_ohms = 47e3; ///< node j to node j+3 bracing
    double drive_volts = 2.5;
};
std::string meshDeck(const MeshSpec &spec = {});

/** Seeded random topology: a resistor spanning tree rooted at ground
 *  (always connected, so the reduced system is SPD), random chord
 *  resistors, log-uniform values in [r_min, r_max], current-source
 *  drives, and capacitors sprinkled on random nodes. */
struct RandomSpec {
    std::uint64_t seed = 1;
    std::size_t nodes = 12;       ///< non-ground nodes
    std::size_t extra_edges = 8;  ///< chords beyond the tree
    double r_min_ohms = 10.0;
    double r_max_ohms = 1e6;      ///< 5 decades of dynamic range
    std::size_t sources = 2;      ///< current-source drives
    double drive_amps = 1e-3;
    std::size_t capacitors = 4;
};
std::string randomDeck(const RandomSpec &spec = {});

/**
 * Format a value the way deck authors write it: engineering suffix
 * (`2.2k`, `470n`) when one fits, plain scientific otherwise.
 * Round-trips through parseSpiceValue.
 */
std::string formatSpiceValue(double value);

} // namespace aa::spice

#endif // AA_SPICE_GENERATE_HH
