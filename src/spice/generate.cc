#include "aa/spice/generate.hh"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "aa/common/rng.hh"

namespace aa::spice {

std::string
formatSpiceValue(double value)
{
    struct Suffix {
        double mult;
        const char *text;
    };
    // Largest first; "meg" instead of bare m-for-mega (SPICE's m is
    // milli).
    static const Suffix suffixes[] = {
        {1e12, "t"}, {1e9, "g"},   {1e6, "meg"}, {1e3, "k"},
        {1.0, ""},   {1e-3, "m"},  {1e-6, "u"},  {1e-9, "n"},
        {1e-12, "p"}, {1e-15, "f"},
    };
    char buf[48];
    double mag = std::abs(value);
    if (mag != 0.0) {
        for (const Suffix &s : suffixes) {
            double scaled = value / s.mult;
            double m = std::abs(scaled);
            if (m >= 1.0 && m < 1000.0) {
                std::snprintf(buf, sizeof buf, "%.9g%s", scaled,
                              s.text);
                return buf;
            }
        }
    }
    std::snprintf(buf, sizeof buf, "%.9g", value);
    return buf;
}

std::string
ladderDeck(const LadderSpec &spec)
{
    std::ostringstream os;
    os << "* rc ladder: " << spec.sections << " sections, r="
       << spec.r_ohms << " growth=" << spec.r_growth << "\n";
    os << "vdrive in 0 dc " << formatSpiceValue(spec.drive_volts)
       << "\n";
    double r = spec.r_ohms;
    std::string prev = "in";
    for (std::size_t k = 1; k <= spec.sections; ++k) {
        std::string tap = "n" + std::to_string(k);
        os << "r" << k << " " << prev << " " << tap << " "
           << formatSpiceValue(r) << "\n";
        os << "c" << k << " " << tap << " 0 "
           << formatSpiceValue(spec.c_farads) << "\n";
        prev = tap;
        r *= spec.r_growth;
    }
    os << ".end\n";
    return os.str();
}

std::string
gridDeck(const GridSpec &spec)
{
    std::ostringstream os;
    os << "* resistor grid " << spec.rows << "x" << spec.cols << "\n";
    auto node = [](std::size_t r, std::size_t c) {
        return "n" + std::to_string(r) + "_" + std::to_string(c);
    };
    std::size_t comp = 0;
    for (std::size_t r = 0; r < spec.rows; ++r)
        for (std::size_t c = 0; c < spec.cols; ++c) {
            if (c + 1 < spec.cols)
                os << "rh" << ++comp << " " << node(r, c) << " "
                   << node(r, c + 1) << " "
                   << formatSpiceValue(spec.r_h_ohms) << "\n";
            if (r + 1 < spec.rows)
                os << "rv" << ++comp << " " << node(r, c) << " "
                   << node(r + 1, c) << " "
                   << formatSpiceValue(spec.r_v_ohms) << "\n";
            if (spec.c_farads > 0.0)
                os << "cg" << r << "_" << c << " " << node(r, c)
                   << " 0 " << formatSpiceValue(spec.c_farads)
                   << "\n";
        }
    os << "ranchor " << node(0, 0) << " 0 "
       << formatSpiceValue(spec.r_anchor_ohms) << "\n";
    os << "iload 0 " << node(spec.rows - 1, spec.cols - 1) << " dc "
       << formatSpiceValue(spec.inject_amps) << "\n";
    os << ".end\n";
    return os.str();
}

std::string
meshDeck(const MeshSpec &spec)
{
    std::ostringstream os;
    os << "* subckt pi-cell mesh, " << spec.cells << " cells\n";
    os << ".subckt picell a b\n";
    os << "r1 a mid " << formatSpiceValue(spec.r_ohms) << "\n";
    os << "r2 mid b " << formatSpiceValue(spec.r_ohms) << "\n";
    os << "cmid mid 0 " << formatSpiceValue(spec.c_farads) << "\n";
    os << ".ends\n";
    os << "vdrive n0 0 dc " << formatSpiceValue(spec.drive_volts)
       << "\n";
    for (std::size_t k = 0; k < spec.cells; ++k)
        os << "x" << k << " n" << k << " n" << k + 1 << " picell\n";
    // Long-range bracing makes the pattern non-banded.
    for (std::size_t k = 0; k + 3 <= spec.cells; ++k)
        os << "rbrace" << k << " n" << k << " n" << k + 3 << " "
           << formatSpiceValue(spec.r_brace_ohms) << "\n";
    os << "rload n" << spec.cells << " 0 "
       << formatSpiceValue(2.0 * spec.r_ohms) << "\n";
    os << ".end\n";
    return os.str();
}

std::string
randomDeck(const RandomSpec &spec)
{
    Rng rng(spec.seed ^ 0x5eed5eedull);
    std::ostringstream os;
    os << "* random topology, seed " << spec.seed << ", "
       << spec.nodes << " nodes\n";
    auto node = [](std::size_t k) {
        return k == 0 ? std::string("0")
                      : "n" + std::to_string(k);
    };
    double log_lo = std::log(spec.r_min_ohms);
    double log_hi = std::log(spec.r_max_ohms);
    auto resistance = [&] {
        return std::exp(rng.uniform(log_lo, log_hi));
    };
    std::vector<std::size_t> degree(spec.nodes + 1, 0);
    std::size_t comp = 0;
    // Spanning tree rooted at ground: node k attaches to a uniform
    // earlier node, so the network is always connected to ground.
    for (std::size_t k = 1; k <= spec.nodes; ++k) {
        std::size_t parent = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(k) - 1));
        os << "rt" << ++comp << " " << node(k) << " " << node(parent)
           << " " << formatSpiceValue(resistance()) << "\n";
        ++degree[k];
        ++degree[parent];
    }
    // Chords: random extra edges (self-edges redrawn as ground ties).
    for (std::size_t e = 0; e < spec.extra_edges; ++e) {
        std::size_t a = static_cast<std::size_t>(rng.uniformInt(
            1, static_cast<std::int64_t>(spec.nodes)));
        std::size_t b = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(spec.nodes)));
        if (a == b)
            b = 0;
        os << "rx" << ++comp << " " << node(a) << " " << node(b)
           << " " << formatSpiceValue(resistance()) << "\n";
        ++degree[a];
        ++degree[b];
    }
    for (std::size_t s = 0; s < spec.sources; ++s) {
        std::size_t at = static_cast<std::size_t>(rng.uniformInt(
            1, static_cast<std::int64_t>(spec.nodes)));
        os << "isrc" << s << " 0 " << node(at) << " dc "
           << formatSpiceValue(spec.drive_amps *
                               (1.0 + 0.5 * static_cast<double>(s)))
           << "\n";
        ++degree[at];
    }
    for (std::size_t c = 0; c < spec.capacitors; ++c) {
        std::size_t at = static_cast<std::size_t>(rng.uniformInt(
            1, static_cast<std::int64_t>(spec.nodes)));
        os << "cx" << c << " " << node(at) << " 0 "
           << formatSpiceValue(1e-9 *
                               (1.0 + static_cast<double>(c)))
           << "\n";
        ++degree[at];
    }
    // Leaf taming: the parser (rightly) rejects single-connection
    // nodes, so tree leaves that drew no chord/source/cap get a
    // high-value bleed resistor to ground.
    for (std::size_t k = 1; k <= spec.nodes; ++k)
        if (degree[k] < 2)
            os << "rbleed" << k << " " << node(k) << " 0 "
               << formatSpiceValue(spec.r_max_ohms) << "\n";
    os << ".end\n";
    return os.str();
}

} // namespace aa::spice
