/**
 * @file
 * CSV export of recorded trajectories — the scope-capture utility
 * for inspecting analog waveforms offline (plot with any tool).
 */

#ifndef AA_ODE_CSV_HH
#define AA_ODE_CSV_HH

#include <ostream>
#include <string>
#include <vector>

#include "aa/ode/trajectory.hh"

namespace aa::ode {

/**
 * Write a trajectory as CSV: header "t,<name0>,<name1>,..." then one
 * row per sample. Column names default to s0..sN-1 when empty;
 * when given, their count must match the state width.
 */
void writeCsv(const Trajectory &trajectory, std::ostream &os,
              const std::vector<std::string> &names = {});

/** Convenience overload creating/truncating the file at `path`. */
void writeCsvFile(const Trajectory &trajectory,
                  const std::string &path,
                  const std::vector<std::string> &names = {});

} // namespace aa::ode

#endif // AA_ODE_CSV_HH
