#include "aa/ode/integrator.hh"

#include <algorithm>
#include <cmath>

#include "aa/common/logging.hh"

namespace aa::ode {

const char *
methodName(Method m)
{
    switch (m) {
      case Method::Euler: return "euler";
      case Method::Heun: return "heun";
      case Method::Rk4: return "rk4";
      case Method::Rkf45: return "rkf45";
      case Method::Dopri5: return "dopri5";
    }
    panic("methodName: bad enum");
}

bool
isAdaptive(Method m)
{
    return m == Method::Rkf45 || m == Method::Dopri5;
}

const char *
stopReasonName(StopReason r)
{
    switch (r) {
      case StopReason::ReachedTEnd: return "reached_t_end";
      case StopReason::SteadyState: return "steady_state";
      case StopReason::Event: return "event";
      case StopReason::HitStepLimit: return "hit_step_limit";
      case StopReason::StepUnderflow: return "step_underflow";
    }
    panic("stopReasonName: bad enum");
}

namespace {

/** Workspace of stage vectors shared across steps. */
struct Stages {
    explicit Stages(std::size_t n)
    {
        for (auto &k : ks)
            k.resize(n);
        ytmp.resize(n);
    }
    Vector ks[7];
    Vector ytmp;
};

/** y_next = y + dt * sum(w_i * k_i); stages already filled. */
void
combine(const Vector &y, double dt, const Vector *ks, const double *w,
        std::size_t nstage, Vector &out)
{
    out = y;
    for (std::size_t s = 0; s < nstage; ++s) {
        if (w[s] == 0.0)
            continue;
        la::axpy(dt * w[s], ks[s], out);
    }
}

/** ytmp = y + dt * sum(a_i * k_i) for the first `ns` stages. */
void
stagePoint(const Vector &y, double dt, const Vector *ks,
           const double *a, std::size_t ns, Vector &ytmp)
{
    ytmp = y;
    for (std::size_t s = 0; s < ns; ++s) {
        if (a[s] == 0.0)
            continue;
        la::axpy(dt * a[s], ks[s], ytmp);
    }
}

/**
 * One fixed step; k1 must hold f(t, y) on entry. Returns number of
 * extra RHS evaluations performed.
 */
std::size_t
fixedStep(const OdeSystem &sys, Method method, double t,
          const Vector &y, double dt, Stages &w, Vector &y_next)
{
    auto &k = w.ks;
    switch (method) {
      case Method::Euler: {
        const double b[] = {1.0};
        combine(y, dt, k, b, 1, y_next);
        return 0;
      }
      case Method::Heun: {
        const double a1[] = {1.0};
        stagePoint(y, dt, k, a1, 1, w.ytmp);
        sys.rhs(t + dt, w.ytmp, k[1]);
        const double b[] = {0.5, 0.5};
        combine(y, dt, k, b, 2, y_next);
        return 1;
      }
      case Method::Rk4: {
        const double a1[] = {0.5};
        stagePoint(y, dt, k, a1, 1, w.ytmp);
        sys.rhs(t + 0.5 * dt, w.ytmp, k[1]);
        const double a2[] = {0.0, 0.5};
        stagePoint(y, dt, k, a2, 2, w.ytmp);
        sys.rhs(t + 0.5 * dt, w.ytmp, k[2]);
        const double a3[] = {0.0, 0.0, 1.0};
        stagePoint(y, dt, k, a3, 3, w.ytmp);
        sys.rhs(t + dt, w.ytmp, k[3]);
        const double b[] = {1.0 / 6, 1.0 / 3, 1.0 / 3, 1.0 / 6};
        combine(y, dt, k, b, 4, y_next);
        return 3;
      }
      default:
        panic("fixedStep: adaptive method routed to fixed path");
    }
}

/** Embedded pair tableau. */
struct Tableau {
    std::size_t stages;
    const double *c;
    const double *a[6]; ///< a[i] has i+1 entries, for stage i+1
    const double *b_high;
    const double *b_low;
    int order_high; ///< used for step-size exponent
};

// Runge-Kutta-Fehlberg 4(5).
namespace rkf {
const double c[] = {0, 1.0 / 4, 3.0 / 8, 12.0 / 13, 1.0, 1.0 / 2};
const double a1[] = {1.0 / 4};
const double a2[] = {3.0 / 32, 9.0 / 32};
const double a3[] = {1932.0 / 2197, -7200.0 / 2197, 7296.0 / 2197};
const double a4[] = {439.0 / 216, -8.0, 3680.0 / 513, -845.0 / 4104};
const double a5[] = {-8.0 / 27, 2.0, -3544.0 / 2565, 1859.0 / 4104,
                     -11.0 / 40};
const double b5[] = {16.0 / 135, 0.0, 6656.0 / 12825, 28561.0 / 56430,
                     -9.0 / 50, 2.0 / 55};
const double b4[] = {25.0 / 216, 0.0, 1408.0 / 2565, 2197.0 / 4104,
                     -1.0 / 5, 0.0};
const Tableau tab = {6, c, {a1, a2, a3, a4, a5, nullptr}, b5, b4, 5};
} // namespace rkf

// Dormand-Prince 5(4).
namespace dp {
const double c[] = {0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1.0, 1.0};
const double a1[] = {1.0 / 5};
const double a2[] = {3.0 / 40, 9.0 / 40};
const double a3[] = {44.0 / 45, -56.0 / 15, 32.0 / 9};
const double a4[] = {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561,
                     -212.0 / 729};
const double a5[] = {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247,
                     49.0 / 176, -5103.0 / 18656};
const double a6[] = {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192,
                     -2187.0 / 6784, 11.0 / 84};
const double b5[] = {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192,
                     -2187.0 / 6784, 11.0 / 84, 0.0};
const double b4[] = {5179.0 / 57600, 0.0, 7571.0 / 16695, 393.0 / 640,
                     -92097.0 / 339200, 187.0 / 2100, 1.0 / 40};
const Tableau tab = {7, c, {a1, a2, a3, a4, a5, a6}, b5, b4, 5};
} // namespace dp

/**
 * One attempted adaptive step. k[0] must hold f(t, y). Fills y_next
 * and the scaled error norm; returns RHS evaluations performed.
 */
std::size_t
adaptiveAttempt(const OdeSystem &sys, const Tableau &tab, double t,
                const Vector &y, double dt, Stages &w, Vector &y_next,
                double &err_norm, const IntegrateOptions &opts)
{
    auto &k = w.ks;
    std::size_t evals = 0;
    for (std::size_t s = 1; s < tab.stages; ++s) {
        stagePoint(y, dt, k, tab.a[s - 1], s, w.ytmp);
        sys.rhs(t + tab.c[s] * dt, w.ytmp, k[s]);
        ++evals;
    }
    combine(y, dt, k, tab.b_high, tab.stages, y_next);

    // Scaled RMS error between orders.
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        double e = 0.0;
        for (std::size_t s = 0; s < tab.stages; ++s)
            e += (tab.b_high[s] - tab.b_low[s]) * k[s][i];
        e *= dt;
        double scale =
            opts.abs_tol +
            opts.rel_tol * std::max(std::fabs(y[i]),
                                    std::fabs(y_next[i]));
        double r = e / scale;
        acc += r * r;
    }
    err_norm = std::sqrt(acc / static_cast<double>(
                                   std::max<std::size_t>(1, y.size())));
    return evals;
}

} // namespace

IntegrateResult
integrate(const OdeSystem &sys, Vector y0, double t0, double t_end,
          const IntegrateOptions &opts)
{
    fatalIf(y0.size() != sys.size(),
            "integrate: y0 size ", y0.size(), " != system size ",
            sys.size());
    fatalIf(opts.dt <= 0.0, "integrate: dt must be positive");
    fatalIf(t_end < t0, "integrate: t_end before t0");
    bool unbounded = std::isinf(t_end);
    fatalIf(unbounded && opts.steady_tol <= 0.0 && !opts.stop_when,
            "integrate: infinite t_end needs a steady or event stop");

    IntegrateResult res;
    res.y = std::move(y0);
    res.t = t0;

    Stages work(sys.size());
    Vector y_next(sys.size());
    const Tableau *tab = nullptr;
    if (opts.method == Method::Rkf45)
        tab = &rkf::tab;
    else if (opts.method == Method::Dopri5)
        tab = &dp::tab;

    if (opts.observer)
        opts.observer(res.t, res.y);
    if (opts.stop_when && opts.stop_when(res.t, res.y)) {
        res.reason = StopReason::Event;
        return res;
    }

    double dt = std::min(opts.dt, opts.max_dt);
    std::size_t steady_run = 0;

    while (true) {
        if (!unbounded && res.t >= t_end) {
            res.reason = StopReason::ReachedTEnd;
            return res;
        }
        if (res.steps >= opts.max_steps) {
            res.reason = StopReason::HitStepLimit;
            return res;
        }

        double dt_eff = dt;
        if (!unbounded)
            dt_eff = std::min(dt_eff, t_end - res.t);

        // f(t, y) is needed by every method's first stage and by the
        // steady-state monitor.
        sys.rhs(res.t, res.y, work.ks[0]);
        ++res.rhs_evals;

        if (opts.steady_tol > 0.0 && res.t >= opts.steady_min_time) {
            double drift;
            if (opts.steady_indices.empty()) {
                drift = la::normInf(work.ks[0]);
            } else {
                drift = 0.0;
                for (std::size_t i : opts.steady_indices) {
                    panicIf(i >= work.ks[0].size(),
                            "steady_indices out of range");
                    drift = std::max(drift,
                                     std::fabs(work.ks[0][i]));
                }
            }
            if (drift < opts.steady_tol) {
                if (++steady_run >= opts.steady_hold) {
                    res.reason = StopReason::SteadyState;
                    return res;
                }
            } else {
                steady_run = 0;
            }
        }

        if (tab) {
            double err = 0.0;
            res.rhs_evals += adaptiveAttempt(sys, *tab, res.t, res.y,
                                             dt_eff, work, y_next, err,
                                             opts);
            if (err > 1.0) {
                ++res.rejected;
                double shrink = 0.9 * std::pow(err, -1.0 / tab->order_high);
                dt = dt_eff * std::clamp(shrink, 0.2, 1.0);
                if (dt < opts.min_dt) {
                    res.reason = StopReason::StepUnderflow;
                    return res;
                }
                continue;
            }
            // Accept and grow.
            double grow =
                err > 0.0
                    ? 0.9 * std::pow(err, -1.0 / tab->order_high)
                    : 5.0;
            dt = std::min(dt_eff * std::clamp(grow, 0.2, 5.0),
                          opts.max_dt);
            dt = std::max(dt, opts.min_dt);
        } else {
            res.rhs_evals += fixedStep(sys, opts.method, res.t, res.y,
                                       dt_eff, work, y_next);
        }

        res.t += dt_eff;
        std::swap(res.y, y_next);
        ++res.steps;

        if (opts.observer)
            opts.observer(res.t, res.y);
        if (opts.stop_when && opts.stop_when(res.t, res.y)) {
            res.reason = StopReason::Event;
            return res;
        }
    }
}

} // namespace aa::ode
