/**
 * @file
 * Trajectory recording: an observer that stores (t, y) samples so a
 * run's waveform can be inspected — the analog accelerator's
 * "time-varying waveform for the variable is the ODE solution".
 */

#ifndef AA_ODE_TRAJECTORY_HH
#define AA_ODE_TRAJECTORY_HH

#include <functional>
#include <vector>

#include "aa/la/vector.hh"

namespace aa::ode {

/** Stores sampled states of an integration run. */
class Trajectory
{
  public:
    /** Record every `stride`-th accepted step (1 = all). */
    explicit Trajectory(std::size_t stride = 1) : stride(stride) {}

    /** Observer to plug into IntegrateOptions::observer. */
    std::function<void(double, const la::Vector &)> observer();

    std::size_t samples() const { return times.size(); }
    double time(std::size_t k) const { return times[k]; }
    const la::Vector &state(std::size_t k) const { return states[k]; }

    /** One variable's waveform across all samples. */
    std::vector<double> component(std::size_t i) const;

    /**
     * Linear interpolation of the state at time t; clamps to the
     * recorded range. Needs at least one sample.
     */
    la::Vector sampleAt(double t) const;

  private:
    std::size_t stride;
    std::size_t seen = 0;
    std::vector<double> times;
    std::vector<la::Vector> states;
};

} // namespace aa::ode

#endif // AA_ODE_TRAJECTORY_HH
