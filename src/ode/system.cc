#include "aa/ode/system.hh"

#include "aa/common/logging.hh"
#include "aa/la/dense_matrix.hh"

namespace aa::ode {

GradientFlowOde::GradientFlowOde(const la::DenseMatrix &a, Vector b,
                                 double rate)
    : a_(a), b_(std::move(b)), rate_(rate)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b_.size(),
            "GradientFlowOde: dimension mismatch");
}

void
GradientFlowOde::rhs(double, const Vector &y, Vector &dydt) const
{
    Vector au = a_.apply(y);
    for (std::size_t i = 0; i < y.size(); ++i)
        dydt[i] = rate_ * (b_[i] - au[i]);
}

} // namespace aa::ode
