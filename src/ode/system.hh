/**
 * @file
 * ODE system interface dy/dt = f(t, y).
 *
 * The analog circuit simulator exposes a whole chip configuration as
 * one OdeSystem (integrator states plus per-block bandwidth lags), and
 * aa_ode integrates it. Algorithm 1 of the paper (Euler's method) is
 * the Method::Euler path over a one-variable system.
 */

#ifndef AA_ODE_SYSTEM_HH
#define AA_ODE_SYSTEM_HH

#include <functional>

#include "aa/la/vector.hh"

namespace aa::la {
class DenseMatrix;
} // namespace aa::la

namespace aa::ode {

using la::Vector;

/** Right-hand side of an explicit first-order ODE system. */
class OdeSystem
{
  public:
    virtual ~OdeSystem() = default;

    /** Number of state variables. */
    virtual std::size_t size() const = 0;

    /** dydt <- f(t, y); dydt is pre-sized to size(). */
    virtual void rhs(double t, const Vector &y, Vector &dydt) const = 0;
};

/** OdeSystem over a std::function, for tests and small examples. */
class CallbackOde : public OdeSystem
{
  public:
    using RhsFn =
        std::function<void(double, const Vector &, Vector &)>;

    CallbackOde(std::size_t n, RhsFn fn) : n(n), fn(std::move(fn)) {}

    std::size_t size() const override { return n; }

    void
    rhs(double t, const Vector &y, Vector &dydt) const override
    {
        fn(t, y, dydt);
    }

  private:
    std::size_t n;
    RhsFn fn;
};

/**
 * The linear gradient-flow system du/dt = b - A u the accelerator
 * implements for linear algebra (paper Eq. 2 generalized), with an
 * optional rate factor k modelling integrator bandwidth:
 * du/dt = k (b - A u).
 */
class GradientFlowOde : public OdeSystem
{
  public:
    GradientFlowOde(const la::DenseMatrix &a, Vector b, double rate = 1.0);

    std::size_t size() const override { return b_.size(); }
    void rhs(double t, const Vector &y, Vector &dydt) const override;

  private:
    const la::DenseMatrix &a_;
    Vector b_;
    double rate_;
};

} // namespace aa::ode

#endif // AA_ODE_SYSTEM_HH
