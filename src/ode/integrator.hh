/**
 * @file
 * Explicit ODE integration driver.
 *
 * Fixed-step Euler (paper Algorithm 1), Heun, classic RK4, and the
 * adaptive embedded pairs RKF45 and Dormand-Prince 5(4). One driver
 * handles stop conditions: final time, steady state (the analog
 * accelerator's "solution stops changing" criterion), and user events
 * (overflow exceptions in the circuit simulator).
 */

#ifndef AA_ODE_INTEGRATOR_HH
#define AA_ODE_INTEGRATOR_HH

#include <functional>
#include <limits>
#include <vector>

#include "aa/ode/system.hh"

namespace aa::ode {

/** Integration method selector. */
enum class Method {
    Euler,  ///< forward Euler, order 1 (Algorithm 1 of the paper)
    Heun,   ///< explicit trapezoid, order 2
    Rk4,    ///< classic Runge-Kutta, order 4
    Rkf45,  ///< Runge-Kutta-Fehlberg 4(5), adaptive
    Dopri5  ///< Dormand-Prince 5(4), adaptive
};

const char *methodName(Method m);
bool isAdaptive(Method m);

/** Options controlling one integrate() run. */
struct IntegrateOptions {
    Method method = Method::Rk4;

    /** Fixed step size, or initial step for adaptive methods. */
    double dt = 1e-3;

    /** Adaptive error control: |err_i| <= abs_tol + rel_tol*|y_i|. */
    double abs_tol = 1e-9;
    double rel_tol = 1e-7;
    double min_dt = 1e-15;
    double max_dt = std::numeric_limits<double>::infinity();

    /** Hard cap on steps; exceeding it stops with hit_step_limit. */
    std::size_t max_steps = 50'000'000;

    /**
     * Steady-state stop: when > 0, stop once ||dy/dt||_inf stays below
     * this for steady_hold consecutive accepted steps. This is how the
     * analog solver decides u(t) reached u_final.
     */
    double steady_tol = -1.0;
    std::size_t steady_hold = 3;

    /**
     * Earliest time the steady check may fire. Guards against false
     * steady detection during circuit warm-up, when lag states still
     * sit at zero and integrator drift is momentarily tiny.
     */
    double steady_min_time = 0.0;

    /**
     * Restrict the steady check to these state indices (empty = all).
     * The circuit simulator monitors only integrator states: the
     * chip's comparators watch du/dt signals, not parasitic lag
     * states whose derivatives are scaled by the (much faster) branch
     * pole frequency.
     */
    std::vector<std::size_t> steady_indices;

    /** Event: integration stops when this returns true. */
    std::function<bool(double t, const Vector &y)> stop_when;

    /** Observer called after each accepted step (and at t0). */
    std::function<void(double t, const Vector &y)> observer;
};

/** Why integrate() returned. */
enum class StopReason {
    ReachedTEnd,
    SteadyState,
    Event,
    HitStepLimit,
    StepUnderflow ///< adaptive step fell below min_dt
};

const char *stopReasonName(StopReason r);

/** Outcome of one integrate() run. */
struct IntegrateResult {
    Vector y;              ///< state at the stop time
    double t = 0.0;        ///< stop time
    std::size_t steps = 0; ///< accepted steps
    std::size_t rejected = 0;  ///< rejected adaptive steps
    std::size_t rhs_evals = 0; ///< RHS evaluations
    StopReason reason = StopReason::ReachedTEnd;
};

/**
 * Integrate sys from (t0, y0) toward t_end under the given options.
 * t_end may be +infinity when a steady-state or event stop is set.
 */
IntegrateResult integrate(const OdeSystem &sys, Vector y0, double t0,
                          double t_end, const IntegrateOptions &opts);

} // namespace aa::ode

#endif // AA_ODE_INTEGRATOR_HH
