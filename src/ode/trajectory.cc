#include "aa/ode/trajectory.hh"

#include <algorithm>

#include "aa/common/logging.hh"

namespace aa::ode {

std::function<void(double, const la::Vector &)>
Trajectory::observer()
{
    return [this](double t, const la::Vector &y) {
        if (seen++ % stride == 0) {
            times.push_back(t);
            states.push_back(y);
        }
    };
}

std::vector<double>
Trajectory::component(std::size_t i) const
{
    std::vector<double> w;
    w.reserve(states.size());
    for (const auto &s : states) {
        panicIf(i >= s.size(), "Trajectory::component out of range");
        w.push_back(s[i]);
    }
    return w;
}

la::Vector
Trajectory::sampleAt(double t) const
{
    panicIf(times.empty(), "Trajectory::sampleAt: no samples");
    if (t <= times.front())
        return states.front();
    if (t >= times.back())
        return states.back();
    auto it = std::lower_bound(times.begin(), times.end(), t);
    std::size_t hi = static_cast<std::size_t>(it - times.begin());
    std::size_t lo = hi - 1;
    double span = times[hi] - times[lo];
    double w = span > 0.0 ? (t - times[lo]) / span : 0.0;
    la::Vector y(states[lo].size());
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = (1.0 - w) * states[lo][i] + w * states[hi][i];
    return y;
}

} // namespace aa::ode
