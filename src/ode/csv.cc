#include "aa/ode/csv.hh"

#include <fstream>
#include <iomanip>

#include "aa/common/logging.hh"

namespace aa::ode {

void
writeCsv(const Trajectory &trajectory, std::ostream &os,
         const std::vector<std::string> &names)
{
    fatalIf(trajectory.samples() == 0, "writeCsv: empty trajectory");
    std::size_t width = trajectory.state(0).size();
    fatalIf(!names.empty() && names.size() != width,
            "writeCsv: ", names.size(), " names for ", width,
            " states");

    os << "t";
    for (std::size_t i = 0; i < width; ++i) {
        os << ",";
        if (names.empty())
            os << "s" << i;
        else
            os << names[i];
    }
    os << "\n";

    os << std::setprecision(12);
    for (std::size_t k = 0; k < trajectory.samples(); ++k) {
        os << trajectory.time(k);
        const auto &y = trajectory.state(k);
        panicIf(y.size() != width, "writeCsv: ragged trajectory");
        for (std::size_t i = 0; i < width; ++i)
            os << "," << y[i];
        os << "\n";
    }
    os.flush();
}

void
writeCsvFile(const Trajectory &trajectory, const std::string &path,
             const std::vector<std::string> &names)
{
    std::ofstream file(path);
    fatalIf(!file, "writeCsvFile: cannot open ", path);
    writeCsv(trajectory, file, names);
}

} // namespace aa::ode
