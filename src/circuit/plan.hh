/**
 * @file
 * Ahead-of-time evaluation plan for a configured netlist.
 *
 * The simulator's right-hand side is the hot loop of the whole
 * reproduction: every figure integrates the circuit ODE thousands of
 * times. EvalPlan lowers a validated Netlist + AnalogSpec once into a
 * struct-of-arrays form the RHS can sweep linearly:
 *
 *  - CSR fan-in adjacency (in_offsets/in_srcs) instead of nested
 *    vector<vector<size_t>> lookups; summation order matches the
 *    netlist's connection order, so results are bit-identical to the
 *    legacy block walk.
 *  - Per-kind op lists (gain, variable multiply, fanout copy, LUT,
 *    DAC, external input, integrator, sink) grouped by topological
 *    level, so SimMode::Ideal evaluation is a sequence of typed
 *    linear sweeps with no per-port switch dispatch.
 *  - A per-simulator PlanWorkspace holding snapshotted parameters
 *    (gains, pre-quantized DAC levels and LUT tables) plus the port
 *    value scratch vector, so RHS evaluation performs zero heap
 *    allocations after construction.
 *
 * Thread-safety contract: an EvalPlan is immutable after construction
 * and may be shared across threads; each thread needs its own
 * Simulator (which owns its PlanWorkspace, output stages and latches).
 */

#ifndef AA_CIRCUIT_PLAN_HH
#define AA_CIRCUIT_PLAN_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "aa/circuit/netlist.hh"
#include "aa/circuit/nonideal.hh"
#include "aa/circuit/spec.hh"
#include "aa/la/vector.hh"

namespace aa::circuit {

/** Compact index type for op records (cache-friendly). */
using PlanIdx = std::uint32_t;

/** out = gain * sum(in); gain snapshot lives in PlanWorkspace. */
struct GainOp {
    PlanIdx out; ///< flat output port
    PlanIdx in;  ///< flat input port (CSR row)
    PlanIdx blk; ///< owning block (parameter refresh)
};

/** out = sum(in0) * sum(in1). */
struct MulVarOp {
    PlanIdx out;
    PlanIdx in0;
    PlanIdx in1;
};

/** One fanout copy: out = sum(in). */
struct FanOp {
    PlanIdx out;
    PlanIdx in;
};

/** out = lut(sum(in)); quantized table lives in PlanWorkspace. */
struct LutOp {
    PlanIdx out;
    PlanIdx in;
    PlanIdx blk;
};

/** Constant bias; pre-quantized level lives in PlanWorkspace. */
struct DacOp {
    PlanIdx out;
    PlanIdx blk;
};

/** External stimulus; the function is read live from the netlist. */
struct ExtInOp {
    PlanIdx out;
    PlanIdx blk;
};

/** Integrator: state at flat port `out`, driven by input row `in`. */
struct IntegOp {
    PlanIdx out;
    PlanIdx in;
    PlanIdx blk;
};

/** Output-free block (ADC/ExtOut) whose input node is range-checked. */
struct SinkOp {
    PlanIdx in;
    PlanIdx blk;
};

/** Contiguous per-kind op ranges forming one topological level. */
struct LevelSlice {
    PlanIdx gain_begin = 0, gain_end = 0;
    PlanIdx var_begin = 0, var_end = 0;
    PlanIdx fan_begin = 0, fan_end = 0;
    PlanIdx lut_begin = 0, lut_end = 0;
};

/**
 * Per-simulator mutable state for plan evaluation: parameter
 * snapshots (refreshed from the netlist at run start, since gain /
 * level / table reconfiguration between runs is allowed) and the
 * preallocated port-value scratch. Never shared across threads.
 */
struct PlanWorkspace {
    la::Vector vals;              ///< scratch: one slot per flat output
    std::vector<double> gain;     ///< per GainOp
    std::vector<double> dac;      ///< per DacOp, pre-quantized
    std::vector<std::vector<double>> lut; ///< per LutOp, pre-quantized
    /** Per ExtInOp: the netlist's stimulus (null when unset). */
    std::vector<const std::function<double(double)> *> ext;
};

/** The compiled evaluation plan. See the file comment for layout. */
class EvalPlan
{
  public:
    EvalPlan() = default;

    /**
     * Lower a validated netlist. fatal()s when spec.mode is Ideal and
     * the combinational blocks form an algebraic loop (Bandwidth mode
     * integrates through such loops and accepts them).
     */
    EvalPlan(const Netlist &net, const AnalogSpec &spec);

    std::size_t numBlocks() const { return num_blocks; }
    std::size_t outPortCount() const { return out_ports.size(); }
    std::size_t inPortCount() const
    {
        return in_offsets.empty() ? 0 : in_offsets.size() - 1;
    }

    /** Flat index of an output port. */
    std::size_t
    flatOutput(PortRef out) const
    {
        return out_base[out.block.v] + out.port;
    }

    /** Flat index of an input port (CSR row id). */
    std::size_t
    flatInput(PortRef in) const
    {
        return in_base[in.block.v] + in.port;
    }

    /** Summed current into flat input port `row` from `vals`. */
    double
    inputSum(std::size_t row, const la::Vector &vals) const
    {
        double acc = 0.0;
        for (std::size_t j = in_offsets[row]; j < in_offsets[row + 1];
             ++j)
            acc += vals[in_srcs[j]];
        return acc;
    }

    const std::vector<PortRef> &outPorts() const { return out_ports; }
    const std::vector<std::size_t> &integFlats() const
    {
        return integ_flats;
    }
    const std::vector<IntegOp> &integOps() const { return integ_ops; }
    std::size_t levelCount() const { return levels.size(); }
    bool hasCombCycle() const { return has_comb_cycle; }

    /** Size the workspace and snapshot parameters from the netlist. */
    void initWorkspace(const Netlist &net, const AnalogSpec &spec,
                       PlanWorkspace &ws) const;

    /**
     * Re-snapshot reconfigurable parameters (gains, DAC levels, LUT
     * tables) into an already-sized workspace. No allocations unless
     * a LUT table grew.
     */
    void refreshParams(const Netlist &net, const AnalogSpec &spec,
                       PlanWorkspace &ws) const;

    /**
     * Fill ws.vals with every flat output-port value implied by the
     * Ideal-mode state vector y (integrator states). Zero-alloc.
     */
    void evalIdealPorts(double t, const la::Vector &y,
                        const std::vector<OutputStage> &stages,
                        const AnalogSpec &spec,
                        PlanWorkspace &ws) const;

    /** Ideal-mode RHS over integrator states. Zero-alloc. */
    void rhsIdeal(double t, const la::Vector &y, la::Vector &dydt,
                  const std::vector<OutputStage> &stages,
                  const AnalogSpec &spec,
                  std::vector<std::uint8_t> &latches,
                  PlanWorkspace &ws) const;

    /** Bandwidth-mode RHS over per-port lag states. Zero-alloc. */
    void rhsBandwidth(double t, const la::Vector &y, la::Vector &dydt,
                      const std::vector<OutputStage> &stages,
                      const AnalogSpec &spec,
                      std::vector<std::uint8_t> &latches,
                      PlanWorkspace &ws) const;

  private:
    double integDeriv(const IntegOp &op, double state,
                      const la::Vector &vals,
                      const std::vector<OutputStage> &stages,
                      const AnalogSpec &spec,
                      std::vector<std::uint8_t> &latches) const;
    void evalCombLevel(const LevelSlice &lv, double t,
                       la::Vector &vals,
                       const std::vector<OutputStage> &stages,
                       const AnalogSpec &spec,
                       const PlanWorkspace &ws) const;
    void evalSources(double t, la::Vector &vals,
                     const std::vector<OutputStage> &stages,
                     const AnalogSpec &spec,
                     const PlanWorkspace &ws) const;
    void checkSinks(const la::Vector &vals, const AnalogSpec &spec,
                    std::vector<std::uint8_t> &latches) const;

    std::size_t num_blocks = 0;

    // Port layout (block-major, identical to the legacy simulator's).
    std::vector<PortRef> out_ports;      ///< flat -> port
    std::vector<std::size_t> out_base;   ///< block -> first flat out
    std::vector<std::size_t> in_base;    ///< block -> first flat in

    // CSR fan-in: sources of flat input port i are
    // in_srcs[in_offsets[i] .. in_offsets[i+1]).
    std::vector<std::size_t> in_offsets;
    std::vector<std::size_t> in_srcs;

    // Typed op lists; combinational kinds are grouped by `levels`.
    std::vector<GainOp> gain_ops;
    std::vector<MulVarOp> var_ops;
    std::vector<FanOp> fan_ops;
    std::vector<LutOp> lut_ops;
    std::vector<DacOp> dac_ops;
    std::vector<ExtInOp> extin_ops;
    std::vector<IntegOp> integ_ops;
    std::vector<SinkOp> sink_ops;
    std::vector<LevelSlice> levels;

    /** Flat outputs of integrators = Ideal-mode state layout. */
    std::vector<std::size_t> integ_flats;

    bool has_comb_cycle = false;
};

} // namespace aa::circuit

#endif // AA_CIRCUIT_PLAN_HH
