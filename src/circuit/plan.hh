/**
 * @file
 * Ahead-of-time evaluation plan for a configured netlist.
 *
 * The simulator's right-hand side is the hot loop of the whole
 * reproduction: every figure integrates the circuit ODE thousands of
 * times. EvalPlan lowers a validated Netlist + AnalogSpec once into a
 * struct-of-arrays form the RHS can sweep linearly:
 *
 *  - CSR fan-in adjacency (in_offsets/in_srcs) instead of nested
 *    vector<vector<size_t>> lookups; summation order matches the
 *    netlist's connection order, so results are bit-identical to the
 *    legacy block walk.
 *  - Per-kind op lists (gain, variable multiply, fanout copy, LUT,
 *    DAC, external input, integrator, sink) grouped by topological
 *    level, so SimMode::Ideal evaluation is a sequence of typed
 *    linear sweeps with no per-port switch dispatch.
 *  - SoA stage tables (built once at plan compile, section 5g of
 *    DESIGN.md): per kind per topo level, the single-source ops are
 *    re-packed into contiguous out/src index lanes with their
 *    coefficient and output-stage error lanes alongside, so each
 *    level is a flat gather-multiply-scatter loop annotated
 *    `#pragma omp simd` (no intrinsics; ops inside one level never
 *    read each other's outputs, which is exactly the no-dependency
 *    promise the pragma makes). Multi-source ops keep a (32-bit) CSR
 *    row walk in a separate lane so summation order — and therefore
 *    every bit of the result — matches the AoS walker.
 *  - A per-simulator PlanWorkspace holding snapshotted parameters
 *    (gains, pre-quantized DAC levels and LUT tables) plus the port
 *    value scratch vector, so RHS evaluation performs zero heap
 *    allocations after construction.
 *
 * The pre-SoA typed-op walker is retained as rhsIdealAos /
 * rhsBandwidthAos: together with Simulator::evalRhsReference it is
 * the bit-exactness oracle the plan-equivalence suite sweeps the SoA
 * path against.
 *
 * Thread-safety contract: an EvalPlan is immutable after construction
 * and may be shared across threads; each thread needs its own
 * Simulator (which owns its PlanWorkspace, output stages and latches).
 */

#ifndef AA_CIRCUIT_PLAN_HH
#define AA_CIRCUIT_PLAN_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "aa/circuit/netlist.hh"
#include "aa/circuit/nonideal.hh"
#include "aa/circuit/spec.hh"
#include "aa/la/vector.hh"

namespace aa::circuit {

/** Compact index type for op records (cache-friendly). */
using PlanIdx = std::uint32_t;

/**
 * Sum vals over one CSR row: sum of vals[src[j]] for j in [b, e).
 *
 * The gather is the RHS's memory-bound inner loop; the 4-way unroll
 * exposes the four index loads to the pipeline while keeping a
 * SINGLE accumulator chain — floating-point adds stay in exactly the
 * source order, so the result is bit-identical to the naive walk
 * (the equivalence suite sweeps this against the AoS oracle). The
 * prefetch targets the indirection's next cache lines; it is a hint
 * and never reads past the index array's end.
 */
inline double
csrGatherSum(const PlanIdx *src, PlanIdx b, PlanIdx e,
             const double *v)
{
    double acc = 0.0;
    PlanIdx j = b;
#if defined(__GNUC__) || defined(__clang__)
    if (e - j >= 16)
        __builtin_prefetch(src + j + 16, 0, 1);
#endif
    for (; j + 4 <= e; j += 4) {
#if defined(__GNUC__) || defined(__clang__)
        if (j + 20 <= e)
            __builtin_prefetch(src + j + 20, 0, 1);
#endif
        acc += v[src[j]];
        acc += v[src[j + 1]];
        acc += v[src[j + 2]];
        acc += v[src[j + 3]];
    }
    for (; j < e; ++j)
        acc += v[src[j]];
    return acc;
}

/** out = gain * sum(in); gain snapshot lives in PlanWorkspace. */
struct GainOp {
    PlanIdx out; ///< flat output port
    PlanIdx in;  ///< flat input port (CSR row)
    PlanIdx blk; ///< owning block (parameter refresh)
};

/** out = sum(in0) * sum(in1). */
struct MulVarOp {
    PlanIdx out;
    PlanIdx in0;
    PlanIdx in1;
};

/** One fanout copy: out = sum(in). */
struct FanOp {
    PlanIdx out;
    PlanIdx in;
};

/** out = lut(sum(in)); quantized table lives in PlanWorkspace. */
struct LutOp {
    PlanIdx out;
    PlanIdx in;
    PlanIdx blk;
};

/** Constant bias; pre-quantized level lives in PlanWorkspace. */
struct DacOp {
    PlanIdx out;
    PlanIdx blk;
};

/** External stimulus; the function is read live from the netlist. */
struct ExtInOp {
    PlanIdx out;
    PlanIdx blk;
};

/** Integrator: state at flat port `out`, driven by input row `in`. */
struct IntegOp {
    PlanIdx out;
    PlanIdx in;
    PlanIdx blk;
};

/** Output-free block (ADC/ExtOut) whose input node is range-checked. */
struct SinkOp {
    PlanIdx in;
    PlanIdx blk;
};

/** Contiguous per-kind op ranges forming one topological level. */
struct LevelSlice {
    PlanIdx gain_begin = 0, gain_end = 0;
    PlanIdx var_begin = 0, var_end = 0;
    PlanIdx fan_begin = 0, fan_end = 0;
    PlanIdx lut_begin = 0, lut_end = 0;
};

/**
 * Per-simulator mutable state for plan evaluation: parameter
 * snapshots (refreshed from the netlist at run start, since gain /
 * level / table reconfiguration between runs is allowed) and the
 * preallocated port-value scratch. Never shared across threads.
 */
struct PlanWorkspace {
    la::Vector vals;              ///< scratch: one slot per flat output
    std::vector<double> gain;     ///< per GainOp
    std::vector<double> dac;      ///< per DacOp, pre-quantized
    std::vector<std::vector<double>> lut; ///< per LutOp, pre-quantized
    /** Per ExtInOp: the netlist's stimulus (null when unset). */
    std::vector<const std::function<double(double)> *> ext;

    // SoA coefficient lanes, aligned with the plan's re-packed
    // unit-/multi-source gain orders (filled by refreshParams).
    std::vector<double> gain_u, gain_m;

    /**
     * Output-stage error lanes in SoA op position order (one position
     * per producing op; see EvalPlan's stage_out map). Split into the
     * exact factors applyStage reads — ge1 = 1 + gain_err, trim gain,
     * offset, trim offset, cubic — and applied in applyStage's
     * floating-point evaluation order, so the lane path is
     * bit-identical to the AoS walker. Filled by refreshStages; a
     * Simulator re-syncs them whenever its stages mutate.
     */
    std::vector<double> st_ge1, st_tg, st_off, st_toff, st_cub;
    /** All stages identity (no variation, no trims): the SoA sweeps
     *  skip stage math entirely (a clamp is all that remains). */
    bool stages_identity = false;
    /** refreshStages has run for the current plan. */
    bool stages_valid = false;
};

/** The compiled evaluation plan. See the file comment for layout. */
class EvalPlan
{
  public:
    EvalPlan() = default;

    /**
     * Lower a validated netlist. fatal()s when spec.mode is Ideal and
     * the combinational blocks form an algebraic loop (Bandwidth mode
     * integrates through such loops and accepts them).
     */
    EvalPlan(const Netlist &net, const AnalogSpec &spec);

    std::size_t numBlocks() const { return num_blocks; }
    std::size_t outPortCount() const { return out_ports.size(); }
    std::size_t inPortCount() const
    {
        return in_offsets.empty() ? 0 : in_offsets.size() - 1;
    }

    /** Flat index of an output port. */
    std::size_t
    flatOutput(PortRef out) const
    {
        return out_base[out.block.v] + out.port;
    }

    /** Flat index of an input port (CSR row id). */
    std::size_t
    flatInput(PortRef in) const
    {
        return in_base[in.block.v] + in.port;
    }

    /** Summed current into flat input port `row` from `vals`. */
    double
    inputSum(std::size_t row, const la::Vector &vals) const
    {
        double acc = 0.0;
        for (std::size_t j = in_offsets[row]; j < in_offsets[row + 1];
             ++j)
            acc += vals[in_srcs[j]];
        return acc;
    }

    const std::vector<PortRef> &outPorts() const { return out_ports; }
    const std::vector<std::size_t> &integFlats() const
    {
        return integ_flats;
    }
    const std::vector<IntegOp> &integOps() const { return integ_ops; }
    std::size_t levelCount() const { return levels.size(); }
    bool hasCombCycle() const { return has_comb_cycle; }

    /** Size the workspace and snapshot parameters from the netlist. */
    void initWorkspace(const Netlist &net, const AnalogSpec &spec,
                       PlanWorkspace &ws) const;

    /**
     * Re-snapshot reconfigurable parameters (gains, DAC levels, LUT
     * tables) into an already-sized workspace. No allocations unless
     * a LUT table grew.
     */
    void refreshParams(const Netlist &net, const AnalogSpec &spec,
                       PlanWorkspace &ws) const;

    /**
     * Re-snapshot output-stage errors/trims into the workspace's SoA
     * stage lanes (and recompute the identity flag). Must run before
     * the SoA eval paths whenever `stages` mutated; Simulator tracks
     * this with a dirty flag so the hot loop never pays for it.
     */
    void refreshStages(const std::vector<OutputStage> &stages,
                       PlanWorkspace &ws) const;

    /**
     * Fill ws.vals with every flat output-port value implied by the
     * Ideal-mode state vector y (integrator states). Zero-alloc.
     * Uses the SoA stage lanes (ws.stages_valid must hold).
     */
    void evalIdealPorts(double t, const la::Vector &y,
                        const std::vector<OutputStage> &stages,
                        const AnalogSpec &spec,
                        PlanWorkspace &ws) const;

    /** Ideal-mode RHS over integrator states, via the SoA stage
     *  tables. Zero-alloc; requires ws.stages_valid. */
    void rhsIdeal(double t, const la::Vector &y, la::Vector &dydt,
                  const std::vector<OutputStage> &stages,
                  const AnalogSpec &spec,
                  std::vector<std::uint8_t> &latches,
                  PlanWorkspace &ws) const;

    /** Bandwidth-mode RHS over per-port lag states, via the SoA
     *  stage tables. Zero-alloc; requires ws.stages_valid. */
    void rhsBandwidth(double t, const la::Vector &y, la::Vector &dydt,
                      const std::vector<OutputStage> &stages,
                      const AnalogSpec &spec,
                      std::vector<std::uint8_t> &latches,
                      PlanWorkspace &ws) const;

    /** The pre-SoA typed-op walker (bit-exactness oracle). */
    void rhsIdealAos(double t, const la::Vector &y, la::Vector &dydt,
                     const std::vector<OutputStage> &stages,
                     const AnalogSpec &spec,
                     std::vector<std::uint8_t> &latches,
                     PlanWorkspace &ws) const;

    /** Bandwidth-mode pre-SoA walker (bit-exactness oracle). */
    void rhsBandwidthAos(double t, const la::Vector &y,
                         la::Vector &dydt,
                         const std::vector<OutputStage> &stages,
                         const AnalogSpec &spec,
                         std::vector<std::uint8_t> &latches,
                         PlanWorkspace &ws) const;

  private:
    /** Per-level SoA lane slices: [xu0, xu1) indexes the unit-source
     *  (fan-in exactly 1) lanes of kind x, [xm0, xm1) the
     *  multi-source CSR lanes. */
    struct SoaSlice {
        PlanIdx gu0 = 0, gu1 = 0, gm0 = 0, gm1 = 0;
        PlanIdx vu0 = 0, vu1 = 0, vm0 = 0, vm1 = 0;
        PlanIdx fu0 = 0, fu1 = 0, fm0 = 0, fm1 = 0;
        PlanIdx lu0 = 0, lu1 = 0, lm0 = 0, lm1 = 0;
    };

    double integDeriv(const IntegOp &op, double state,
                      const la::Vector &vals,
                      const std::vector<OutputStage> &stages,
                      const AnalogSpec &spec,
                      std::vector<std::uint8_t> &latches) const;
    void evalCombLevel(const LevelSlice &lv, double t,
                       la::Vector &vals,
                       const std::vector<OutputStage> &stages,
                       const AnalogSpec &spec,
                       const PlanWorkspace &ws) const;
    void evalSources(double t, la::Vector &vals,
                     const std::vector<OutputStage> &stages,
                     const AnalogSpec &spec,
                     const PlanWorkspace &ws) const;
    void checkSinks(const la::Vector &vals, const AnalogSpec &spec,
                    std::vector<std::uint8_t> &latches) const;
    void evalIdealPortsAos(double t, const la::Vector &y,
                           const std::vector<OutputStage> &stages,
                           const AnalogSpec &spec,
                           PlanWorkspace &ws) const;

    void buildSoaTables();

    /** 32-bit CSR sum; bit-identical to inputSum (same source order,
     *  same 0.0 seed) — csrGatherSum keeps one accumulator chain. */
    double
    inputSum32(PlanIdx row, const la::Vector &vals) const
    {
        return csrGatherSum(in_src32.data(), in_off32[row],
                            in_off32[row + 1], vals.data());
    }

    template <bool Ident>
    void evalSoaSources(double t, la::Vector &vals,
                        const AnalogSpec &spec,
                        const PlanWorkspace &ws) const;
    template <bool Ident>
    void evalSoaLevel(const SoaSlice &s, la::Vector &vals,
                      const AnalogSpec &spec,
                      const PlanWorkspace &ws) const;
    template <bool Ident>
    void rhsIdealSoa(double t, const la::Vector &y, la::Vector &dydt,
                     const AnalogSpec &spec,
                     std::vector<std::uint8_t> &latches,
                     PlanWorkspace &ws) const;
    template <bool Ident>
    void rhsBandwidthSoa(double t, const la::Vector &y,
                         la::Vector &dydt, const AnalogSpec &spec,
                         std::vector<std::uint8_t> &latches,
                         PlanWorkspace &ws) const;

    std::size_t num_blocks = 0;

    // Port layout (block-major, identical to the legacy simulator's).
    std::vector<PortRef> out_ports;      ///< flat -> port
    std::vector<std::size_t> out_base;   ///< block -> first flat out
    std::vector<std::size_t> in_base;    ///< block -> first flat in

    // CSR fan-in: sources of flat input port i are
    // in_srcs[in_offsets[i] .. in_offsets[i+1]).
    std::vector<std::size_t> in_offsets;
    std::vector<std::size_t> in_srcs;

    // Typed op lists; combinational kinds are grouped by `levels`.
    std::vector<GainOp> gain_ops;
    std::vector<MulVarOp> var_ops;
    std::vector<FanOp> fan_ops;
    std::vector<LutOp> lut_ops;
    std::vector<DacOp> dac_ops;
    std::vector<ExtInOp> extin_ops;
    std::vector<IntegOp> integ_ops;
    std::vector<SinkOp> sink_ops;
    std::vector<LevelSlice> levels;

    /** Flat outputs of integrators = Ideal-mode state layout. */
    std::vector<std::size_t> integ_flats;

    // ---- SoA stage tables (built once by buildSoaTables) ---------
    // 32-bit mirror of the CSR fan-in (ports are checked < 2^32).
    std::vector<PlanIdx> in_off32, in_src32;
    // Gain: unit lanes carry the single source directly; *_op maps
    // back to the AoS op index (coefficient + LUT table lookup).
    std::vector<PlanIdx> gu_out, gu_src, gu_op;
    std::vector<PlanIdx> gm_out, gm_row, gm_op;
    // Variable multiply: unit = both inputs have fan-in 1.
    std::vector<PlanIdx> vu_out, vu_src0, vu_src1;
    std::vector<PlanIdx> vm_out, vm_row0, vm_row1;
    // Fanout copies.
    std::vector<PlanIdx> fu_out, fu_src;
    std::vector<PlanIdx> fm_out, fm_row;
    // LUTs.
    std::vector<PlanIdx> lu_out, lu_src, lu_op;
    std::vector<PlanIdx> lm_out, lm_row, lm_op;
    std::vector<SoaSlice> soa_levels;

    /**
     * Flat output port of each SoA op position; positions are laid
     * out family by family ([gu][gm][vu][vm][fu][fm][lu][lm][dac]
     * [ext][integ]) with per-family bases below, so the workspace's
     * stage lanes are read sequentially inside every sweep.
     */
    std::vector<PlanIdx> stage_out;
    PlanIdx sb_gu = 0, sb_gm = 0, sb_vu = 0, sb_vm = 0;
    PlanIdx sb_fu = 0, sb_fm = 0, sb_lu = 0, sb_lm = 0;
    PlanIdx sb_dac = 0, sb_ext = 0, sb_integ = 0;

    bool has_comb_cycle = false;
};

} // namespace aa::circuit

#endif // AA_CIRCUIT_PLAN_HH
