/**
 * @file
 * Netlist of analog blocks and current connections.
 *
 * Connections join a source output port to a destination input port.
 * Many sources may drive one input (currents sum at the node — the
 * paper's "analog crossbars can sum values by simply joining
 * branches"), but each output may drive only ONE input: duplicating a
 * current requires a Fanout block, and the compiler must build fanout
 * trees. connect() enforces this.
 */

#ifndef AA_CIRCUIT_NETLIST_HH
#define AA_CIRCUIT_NETLIST_HH

#include <cstddef>
#include <vector>

#include "aa/circuit/block.hh"

namespace aa::circuit {

/** Opaque block handle. */
struct BlockId {
    std::size_t v = static_cast<std::size_t>(-1);
    bool valid() const { return v != static_cast<std::size_t>(-1); }
    bool operator==(const BlockId &o) const = default;
};

/** One port of one block (an output or an input by context). */
struct PortRef {
    BlockId block;
    std::size_t port = 0;
    bool operator==(const PortRef &o) const = default;
};

/** A directed current connection. */
struct Connection {
    PortRef from; ///< source output port
    PortRef to;   ///< destination input port
};

/** Container for blocks and connections; validated before simulation. */
class Netlist
{
  public:
    /** Add a block; returns its handle. */
    BlockId add(BlockKind kind, BlockParams params = {});

    /** Convenience single-output port of a block. */
    PortRef out(BlockId id, std::size_t port = 0) const;
    /** Convenience input port of a block. */
    PortRef in(BlockId id, std::size_t port = 0) const;

    /**
     * Connect an output to an input. fatal()s if either port is out
     * of range or the output already drives something.
     */
    void connect(PortRef from, PortRef to);

    /** Remove all connections touching the block (reconfiguration). */
    void disconnectAll(BlockId id);

    std::size_t numBlocks() const { return kinds.size(); }
    BlockKind kind(BlockId id) const;
    const BlockParams &params(BlockId id) const;
    BlockParams &params(BlockId id);

    std::size_t inputCount(BlockId id) const;
    std::size_t outputCount(BlockId id) const;

    const std::vector<Connection> &connections() const { return conns; }

    /** All source ports feeding one input port. */
    std::vector<PortRef> driversOf(PortRef input) const;

    /** True if the given output port already drives an input. */
    bool outputInUse(PortRef output) const;

    /** All blocks of a kind, in insertion order. */
    std::vector<BlockId> blocksOfKind(BlockKind kind) const;

    /**
     * Structural checks before simulation: port ranges valid and
     * every MulVar has both inputs driven (a floating multiplier
     * input would silently compute 0). Floating single inputs are
     * legal (zero current). fatal()s on violation.
     */
    void validate() const;

  private:
    void checkId(BlockId id) const;

    std::vector<BlockKind> kinds;
    std::vector<BlockParams> parms;
    std::vector<Connection> conns;
};

} // namespace aa::circuit

#endif // AA_CIRCUIT_NETLIST_HH
