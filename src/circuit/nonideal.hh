/**
 * @file
 * Non-ideal analog behavior: the three error sources the paper's
 * calibration flow targets (Section III-B) — offset bias, gain error,
 * nonlinearity — plus saturation and the trim DACs that compensate
 * the first two.
 *
 * Errors are sampled per OUTPUT PORT (each fanout copy mismatches
 * independently, as real current mirrors do) from a per-chip seeded
 * RNG, so every simulated die is a distinct but reproducible process
 * corner.
 */

#ifndef AA_CIRCUIT_NONIDEAL_HH
#define AA_CIRCUIT_NONIDEAL_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "aa/circuit/spec.hh"
#include "aa/common/rng.hh"

namespace aa::circuit {

/** Error state and trim settings of one output port. */
struct OutputStage {
    // Process variation (fixed at die "fabrication").
    double offset = 0.0;   ///< additive output shift
    double gain_err = 0.0; ///< relative gain error
    double cubic = 0.0;    ///< compression y = v - cubic * v^3

    // Calibration trims (set by the host; quantized codes).
    double trim_offset = 0.0;
    double trim_gain = 1.0;

    /** Sample fresh variation values from the model. */
    static OutputStage sample(const VariationModel &vm, Rng &rng);
};

/**
 * Push an ideal value through one output stage: gain error and trim,
 * offset and trim, cubic compression, hard clip.
 *
 * `monitored` selects the range model: monitored stages (integrator
 * signal paths, ADC inputs) clip at the spec's clip_range and set
 * `overflow` past the linear range — the on-chip comparators of
 * Section III-B. Unmonitored stages (current-mode branches through
 * multipliers, fanouts, DACs, LUTs) clip only at the branch
 * compliance and never flag.
 *
 * Defined inline: this is applied once per output port per RHS
 * evaluation, the innermost loop of the whole reproduction.
 */
inline double
applyStage(const OutputStage &stage, const AnalogSpec &spec, double raw,
           bool &overflow, bool monitored = true)
{
    double v = raw * (1.0 + stage.gain_err) * stage.trim_gain +
               stage.offset + stage.trim_offset;
    // Odd-order compression models the bending DC transfer
    // characteristic near the range edges (expressed relative to the
    // stage's own full scale so wide branches aren't over-bent).
    v = v - stage.cubic * v * v * v /
                (monitored ? 1.0
                           : spec.branch_clip_range *
                                 spec.branch_clip_range);
    if (!monitored)
        return std::clamp(v, -spec.branch_clip_range,
                          spec.branch_clip_range);
    if (std::fabs(v) > spec.linear_range)
        overflow = true;
    return std::clamp(v, -spec.clip_range, spec.clip_range);
}

/** Map a signed trim code to its additive offset trim value. */
double trimOffsetFromCode(const AnalogSpec &spec, int code);

/** Map a signed trim code to its multiplicative gain trim value. */
double trimGainFromCode(const AnalogSpec &spec, int code);

/** Inclusive trim-code range implied by trim_bits. */
int trimCodeMin(const AnalogSpec &spec);
int trimCodeMax(const AnalogSpec &spec);

/** Quantize v in [-1, 1] to a bits-wide code (clamped). */
std::int64_t quantizeCode(double v, std::size_t bits);

/** Reconstruct the value a code represents. */
double codeToValue(std::int64_t code, std::size_t bits);

/** Round-trip quantization v -> code -> value. */
double quantizeValue(double v, std::size_t bits);

} // namespace aa::circuit

#endif // AA_CIRCUIT_NONIDEAL_HH
