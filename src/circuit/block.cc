#include "aa/circuit/block.hh"

#include "aa/common/logging.hh"

namespace aa::circuit {

const char *
blockKindName(BlockKind k)
{
    switch (k) {
      case BlockKind::Integrator: return "integrator";
      case BlockKind::MulGain: return "mul_gain";
      case BlockKind::MulVar: return "mul_var";
      case BlockKind::Fanout: return "fanout";
      case BlockKind::Dac: return "dac";
      case BlockKind::Adc: return "adc";
      case BlockKind::Lut: return "lut";
      case BlockKind::ExtIn: return "ext_in";
      case BlockKind::ExtOut: return "ext_out";
    }
    panic("blockKindName: bad enum");
}

std::size_t
numInputs(BlockKind kind)
{
    switch (kind) {
      case BlockKind::Integrator:
      case BlockKind::MulGain:
      case BlockKind::Fanout:
      case BlockKind::Adc:
      case BlockKind::Lut:
      case BlockKind::ExtOut:
        return 1;
      case BlockKind::MulVar:
        return 2;
      case BlockKind::Dac:
      case BlockKind::ExtIn:
        return 0;
    }
    panic("numInputs: bad enum");
}

std::size_t
numOutputs(BlockKind kind, const BlockParams &params)
{
    switch (kind) {
      case BlockKind::Integrator:
      case BlockKind::MulGain:
      case BlockKind::MulVar:
      case BlockKind::Dac:
      case BlockKind::Lut:
      case BlockKind::ExtIn:
        return 1;
      case BlockKind::Fanout:
        fatalIf(params.copies < 1 || params.copies > 4,
                "fanout copies must be 1..4, got ", params.copies);
        return params.copies;
      case BlockKind::Adc:
      case BlockKind::ExtOut:
        return 0;
    }
    panic("numOutputs: bad enum");
}

} // namespace aa::circuit
