#include "aa/circuit/spec.hh"

namespace aa::circuit {

AnalogSpec
prototypeSpec()
{
    return AnalogSpec{};
}

AnalogSpec
projectedSpec(double bandwidth_hz, std::size_t adc_bits)
{
    AnalogSpec spec;
    spec.bandwidth_hz = bandwidth_hz;
    spec.adc_bits = adc_bits;
    return spec;
}

} // namespace aa::circuit
