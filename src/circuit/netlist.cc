#include "aa/circuit/netlist.hh"

#include <algorithm>

#include "aa/common/logging.hh"

namespace aa::circuit {

BlockId
Netlist::add(BlockKind kind, BlockParams params)
{
    // Validate fanout copies eagerly (numOutputs fatals on bad count).
    numOutputs(kind, params);
    kinds.push_back(kind);
    parms.push_back(std::move(params));
    return BlockId{kinds.size() - 1};
}

void
Netlist::checkId(BlockId id) const
{
    fatalIf(!id.valid() || id.v >= kinds.size(),
            "Netlist: invalid block id ", id.v);
}

PortRef
Netlist::out(BlockId id, std::size_t port) const
{
    checkId(id);
    fatalIf(port >= outputCount(id), "Netlist::out: port ", port,
            " out of range for ", blockKindName(kinds[id.v]));
    return PortRef{id, port};
}

PortRef
Netlist::in(BlockId id, std::size_t port) const
{
    checkId(id);
    fatalIf(port >= inputCount(id), "Netlist::in: port ", port,
            " out of range for ", blockKindName(kinds[id.v]));
    return PortRef{id, port};
}

void
Netlist::connect(PortRef from, PortRef to)
{
    checkId(from.block);
    checkId(to.block);
    fatalIf(from.port >= outputCount(from.block),
            "Netlist::connect: source port out of range");
    fatalIf(to.port >= inputCount(to.block),
            "Netlist::connect: destination port out of range");
    fatalIf(outputInUse(from),
            "Netlist::connect: output of ",
            blockKindName(kinds[from.block.v]), " #", from.block.v,
            " port ", from.port,
            " already drives a node; currents cannot be copied "
            "without a fanout block");
    conns.push_back({from, to});
}

void
Netlist::disconnectAll(BlockId id)
{
    checkId(id);
    std::erase_if(conns, [id](const Connection &c) {
        return c.from.block == id || c.to.block == id;
    });
}

BlockKind
Netlist::kind(BlockId id) const
{
    checkId(id);
    return kinds[id.v];
}

const BlockParams &
Netlist::params(BlockId id) const
{
    checkId(id);
    return parms[id.v];
}

BlockParams &
Netlist::params(BlockId id)
{
    checkId(id);
    return parms[id.v];
}

std::size_t
Netlist::inputCount(BlockId id) const
{
    checkId(id);
    return numInputs(kinds[id.v]);
}

std::size_t
Netlist::outputCount(BlockId id) const
{
    checkId(id);
    return numOutputs(kinds[id.v], parms[id.v]);
}

std::vector<PortRef>
Netlist::driversOf(PortRef input) const
{
    std::vector<PortRef> drivers;
    for (const auto &c : conns)
        if (c.to == input)
            drivers.push_back(c.from);
    return drivers;
}

bool
Netlist::outputInUse(PortRef output) const
{
    return std::any_of(conns.begin(), conns.end(),
                       [&](const Connection &c) {
                           return c.from == output;
                       });
}

std::vector<BlockId>
Netlist::blocksOfKind(BlockKind kind) const
{
    std::vector<BlockId> ids;
    for (std::size_t i = 0; i < kinds.size(); ++i)
        if (kinds[i] == kind)
            ids.push_back(BlockId{i});
    return ids;
}

void
Netlist::validate() const
{
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        BlockId id{i};
        // Only blocks that are actually wired into the datapath are
        // checked: a chip's unused units sit unconnected.
        if (kinds[i] == BlockKind::MulVar &&
            outputInUse(PortRef{id, 0})) {
            for (std::size_t p = 0; p < 2; ++p) {
                fatalIf(driversOf(PortRef{id, p}).empty(),
                        "Netlist::validate: variable multiplier #", i,
                        " drives a node but has floating input ", p);
            }
        }
        if (kinds[i] == BlockKind::Lut &&
            (outputInUse(PortRef{id, 0}) ||
             !driversOf(PortRef{id, 0}).empty())) {
            fatalIf(parms[i].table.size() < 2,
                    "Netlist::validate: LUT #", i,
                    " is wired but has no function loaded");
        }
    }
}

} // namespace aa::circuit
