#include "aa/circuit/simulator.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "aa/common/logging.hh"

namespace aa::circuit {

namespace {

/** Piecewise-linear evaluation of a LUT over the input range [-1,1]. */
double
lutEval(const std::vector<double> &table, std::size_t lut_bits,
        double x)
{
    panicIf(table.size() < 2, "lutEval: table not loaded");
    double clamped = std::clamp(x, -1.0, 1.0);
    double pos = (clamped + 1.0) / 2.0 *
                 static_cast<double>(table.size() - 1);
    auto i0 = static_cast<std::size_t>(pos);
    if (i0 >= table.size() - 1)
        i0 = table.size() - 2;
    double w = pos - static_cast<double>(i0);
    double lo = quantizeValue(table[i0], lut_bits);
    double hi = quantizeValue(table[i0 + 1], lut_bits);
    return (1.0 - w) * lo + w * hi;
}

/**
 * The pre-plan block-walk evaluator, preserved verbatim as the oracle
 * for tests/circuit/plan_equivalence_test: nested fan-in vectors, a
 * per-port kind switch, and an O(blocks x connections) Kahn topo
 * sort, all rebuilt from the netlist on every construction. Heavy on
 * purpose — it shares no wiring tables with EvalPlan.
 */
struct ReferenceEval {
    const Netlist &net;
    const AnalogSpec &spec;
    const std::vector<OutputStage> &stages;
    std::vector<std::uint8_t> &latches;

    std::vector<PortRef> out_ports;
    std::vector<std::size_t> out_base;
    std::vector<std::vector<std::vector<std::size_t>>> inputs;
    std::vector<std::size_t> integ_flats;
    std::vector<std::size_t> topo;
    std::vector<std::size_t> sink_blocks;

    ReferenceEval(const Netlist &net, const AnalogSpec &spec,
                  const std::vector<OutputStage> &stages,
                  std::vector<std::uint8_t> &latches)
        : net(net), spec(spec), stages(stages), latches(latches)
    {
        out_base.assign(net.numBlocks(), 0);
        for (std::size_t b = 0; b < net.numBlocks(); ++b) {
            BlockId id{b};
            out_base[b] = out_ports.size();
            std::size_t nout = net.outputCount(id);
            for (std::size_t o = 0; o < nout; ++o) {
                out_ports.push_back(PortRef{id, o});
                if (net.kind(id) == BlockKind::Integrator)
                    integ_flats.push_back(out_ports.size() - 1);
            }
            if (net.inputCount(id) >= 1 && nout == 0)
                sink_blocks.push_back(b);
        }
        inputs.resize(net.numBlocks());
        for (std::size_t b = 0; b < net.numBlocks(); ++b)
            inputs[b].resize(net.inputCount(BlockId{b}));
        for (const auto &c : net.connections()) {
            std::size_t flat = out_base[c.from.block.v] + c.from.port;
            inputs[c.to.block.v][c.to.port].push_back(flat);
        }
        if (spec.mode == SimMode::Ideal)
            buildTopoOrder();
    }

    void
    buildTopoOrder()
    {
        auto is_comb = [&](std::size_t b) {
            switch (net.kind(BlockId{b})) {
              case BlockKind::MulGain:
              case BlockKind::MulVar:
              case BlockKind::Fanout:
              case BlockKind::Lut:
                return true;
              default:
                return false;
            }
        };
        std::vector<std::size_t> indeg(net.numBlocks(), 0);
        for (const auto &c : net.connections()) {
            if (is_comb(c.from.block.v) && is_comb(c.to.block.v))
                ++indeg[c.to.block.v];
        }
        std::deque<std::size_t> ready;
        std::size_t comb_count = 0;
        for (std::size_t b = 0; b < net.numBlocks(); ++b) {
            if (!is_comb(b))
                continue;
            ++comb_count;
            if (indeg[b] == 0)
                ready.push_back(b);
        }
        while (!ready.empty()) {
            std::size_t b = ready.front();
            ready.pop_front();
            topo.push_back(b);
            for (const auto &c : net.connections()) {
                if (c.from.block.v != b)
                    continue;
                std::size_t dst = c.to.block.v;
                if (is_comb(dst) && --indeg[dst] == 0)
                    ready.push_back(dst);
            }
        }
        fatalIf(topo.size() != comb_count,
                "ReferenceEval: algebraic loop through combinational "
                "blocks; SimMode::Ideal cannot evaluate it");
    }

    double
    inputOf(std::size_t b, std::size_t p, const la::Vector &vals) const
    {
        double acc = 0.0;
        for (std::size_t src : inputs[b][p])
            acc += vals[src];
        return acc;
    }

    double
    rawOutput(std::size_t b, double t, const la::Vector &vals) const
    {
        BlockId id{b};
        const BlockParams &bp = net.params(id);
        switch (net.kind(id)) {
          case BlockKind::MulGain:
            return bp.gain * inputOf(b, 0, vals);
          case BlockKind::MulVar:
            return inputOf(b, 0, vals) * inputOf(b, 1, vals);
          case BlockKind::Fanout:
            return inputOf(b, 0, vals);
          case BlockKind::Dac:
            return quantizeValue(bp.level, spec.dac_bits);
          case BlockKind::Lut:
            if (bp.table.size() < 2)
                return 0.0;
            return lutEval(bp.table, spec.lut_bits,
                           inputOf(b, 0, vals));
          case BlockKind::ExtIn:
            return bp.ext_in ? bp.ext_in(t) : 0.0;
          default:
            panic("rawOutput: block kind has no combinational output");
        }
    }

    double
    integratorDeriv(std::size_t b, std::size_t flat, double state,
                    const la::Vector &vals) const
    {
        bool ovf = false;
        double drive = applyStage(stages[flat], spec,
                                  inputOf(b, 0, vals), ovf);
        if (ovf)
            latches[b] = 1;
        if (std::fabs(state) > spec.linear_range)
            latches[b] = 1;
        double d = spec.integratorRate() * drive;
        if ((state >= spec.clip_range && d > 0.0) ||
            (state <= -spec.clip_range && d < 0.0)) {
            d = 0.0;
        }
        return d;
    }

    void
    checkSinkOverflow(const la::Vector &vals) const
    {
        for (std::size_t b : sink_blocks) {
            double v = inputOf(b, 0, vals);
            if (std::fabs(v) > spec.linear_range)
                latches[b] = 1;
        }
    }

    void
    evalIdealPorts(double t, const la::Vector &y,
                   la::Vector &vals) const
    {
        for (std::size_t k = 0; k < integ_flats.size(); ++k)
            vals[integ_flats[k]] = y[k];
        for (std::size_t b = 0; b < net.numBlocks(); ++b) {
            BlockKind kind = net.kind(BlockId{b});
            if (kind != BlockKind::Dac && kind != BlockKind::ExtIn)
                continue;
            std::size_t f = out_base[b];
            bool ovf = false;
            vals[f] = applyStage(stages[f], spec,
                                 rawOutput(b, t, vals), ovf,
                                 /*monitored=*/false);
        }
        for (std::size_t b : topo) {
            BlockId id{b};
            std::size_t base = out_base[b];
            std::size_t nout = net.outputCount(id);
            for (std::size_t o = 0; o < nout; ++o) {
                std::size_t f = base + o;
                bool ovf = false;
                vals[f] = applyStage(stages[f], spec,
                                     rawOutput(b, t, vals), ovf,
                                     /*monitored=*/false);
            }
        }
    }

    void
    rhsIdeal(double t, const la::Vector &y, la::Vector &dydt) const
    {
        la::Vector vals(out_ports.size());
        evalIdealPorts(t, y, vals);
        for (std::size_t k = 0; k < integ_flats.size(); ++k) {
            std::size_t f = integ_flats[k];
            std::size_t b = out_ports[f].block.v;
            dydt[k] = integratorDeriv(b, f, y[k], vals);
        }
        checkSinkOverflow(vals);
    }

    void
    rhsBandwidth(double t, const la::Vector &y,
                 la::Vector &dydt) const
    {
        double lag = spec.lagRate();
        for (std::size_t b = 0; b < net.numBlocks(); ++b) {
            BlockId id{b};
            BlockKind kind = net.kind(id);
            std::size_t base = out_base[b];
            std::size_t nout = net.outputCount(id);
            if (kind == BlockKind::Integrator) {
                dydt[base] = integratorDeriv(b, base, y[base], y);
                continue;
            }
            for (std::size_t o = 0; o < nout; ++o) {
                std::size_t f = base + o;
                bool ovf = false;
                double target =
                    applyStage(stages[f], spec,
                               rawOutput(b, t, y), ovf,
                               /*monitored=*/false);
                dydt[f] = lag * (target - y[f]);
            }
        }
        checkSinkOverflow(y);
    }
};

} // namespace

/** OdeSystem bridge: run() integrates the compiled plan. */
class Simulator::Dynamics : public ode::OdeSystem
{
  public:
    Dynamics(Simulator &sim) : sim(sim) {}

    std::size_t
    size() const override
    {
        return sim.stateCount();
    }

    void
    rhs(double t, const la::Vector &y, la::Vector &dydt) const override
    {
        sim.evalRhs(t, y, dydt);
    }

  private:
    Simulator &sim;
};

Simulator::Simulator(const Netlist &netlist, const AnalogSpec &spec,
                     std::uint64_t die_seed)
    : net(netlist), spec_(spec), rng(die_seed)
{
    net.validate();
    plan_ = EvalPlan(net, spec_);
    // Stage sampling order equals the flat output-port order, so a
    // die seed keeps producing the same process corner it always has.
    stages.reserve(plan_.outPortCount());
    for (std::size_t f = 0; f < plan_.outPortCount(); ++f)
        stages.push_back(OutputStage::sample(spec_.variation, rng));
    plan_.initWorkspace(net, spec_, ws_);
    latches.assign(net.numBlocks(), 0);
}

std::size_t
Simulator::flatOutput(PortRef out) const
{
    return plan_.flatOutput(out);
}

std::size_t
Simulator::stateCount() const
{
    return spec_.mode == SimMode::Bandwidth
               ? plan_.outPortCount()
               : plan_.integFlats().size();
}

std::size_t
Simulator::stateIndexOf(PortRef out) const
{
    std::size_t flat = flatOutput(out);
    if (spec_.mode == SimMode::Bandwidth)
        return flat;
    const auto &integ = plan_.integFlats();
    for (std::size_t k = 0; k < integ.size(); ++k)
        if (integ[k] == flat)
            return k;
    return static_cast<std::size_t>(-1);
}

la::Vector
Simulator::initialState() const
{
    const auto &ports = plan_.outPorts();
    const auto &integ = plan_.integFlats();
    if (spec_.mode == SimMode::Ideal) {
        la::Vector y(integ.size());
        for (std::size_t k = 0; k < integ.size(); ++k)
            y[k] = net.params(ports[integ[k]].block).ic;
        return y;
    }
    // Bandwidth mode: integrators at their ICs, lag states start at 0
    // (the configuration phase holds signal paths quiescent).
    la::Vector y(plan_.outPortCount());
    for (std::size_t f : integ)
        y[f] = net.params(ports[f].block).ic;
    return y;
}

void
Simulator::evalRhs(double t, const la::Vector &y, la::Vector &dydt)
{
    syncStages();
    if (spec_.mode == SimMode::Bandwidth)
        plan_.rhsBandwidth(t, y, dydt, stages, spec_, latches, ws_);
    else
        plan_.rhsIdeal(t, y, dydt, stages, spec_, latches, ws_);
}

void
Simulator::evalRhsAos(double t, const la::Vector &y, la::Vector &dydt)
{
    if (spec_.mode == SimMode::Bandwidth)
        plan_.rhsBandwidthAos(t, y, dydt, stages, spec_, latches,
                              ws_);
    else
        plan_.rhsIdealAos(t, y, dydt, stages, spec_, latches, ws_);
}

void
Simulator::evalRhsReference(double t, const la::Vector &y,
                            la::Vector &dydt)
{
    ReferenceEval ref(net, spec_, stages, latches);
    if (spec_.mode == SimMode::Bandwidth)
        ref.rhsBandwidth(t, y, dydt);
    else
        ref.rhsIdeal(t, y, dydt);
}

RunResult
Simulator::run(const RunOptions &opts)
{
    // Snapshot reconfigurable parameters (gain/level/table edits
    // since the last run) into the plan workspace.
    plan_.refreshParams(net, spec_, ws_);

    Dynamics dyn(*this);

    ode::IntegrateOptions iopts;
    iopts.method = opts.method;
    double fastest = spec_.mode == SimMode::Bandwidth
                         ? spec_.lagRate()
                         : spec_.integratorRate();
    iopts.dt = 0.01 / fastest;
    iopts.abs_tol = opts.abs_tol;
    iopts.rel_tol = opts.rel_tol;
    iopts.max_steps = opts.max_steps;
    iopts.steady_tol = opts.steady_rate_tol;
    iopts.observer = opts.observer;
    if (spec_.mode == SimMode::Bandwidth) {
        // Only integrator drift is monitored for steady state; lag
        // states carry derivative noise scaled by the branch poles.
        // And no steady verdict before the branch lags have charged:
        // at t = 0 every lag output is zero and integrators are
        // spuriously quiet.
        iopts.steady_indices = plan_.integFlats();
        iopts.steady_min_time = 20.0 / spec_.lagRate();
    }

    auto r = ode::integrate(dyn, initialState(), 0.0, opts.timeout,
                            iopts);

    last_state = std::move(r.y);
    last_time = r.t;
    portValuesInto(last_time, last_state, last_port_values);
    has_run = true;

    RunResult res;
    res.analog_time = r.t;
    res.steps = r.steps;
    res.rhs_evals = r.rhs_evals;
    res.reason = r.reason;
    res.any_exception = anyException();
    return res;
}

void
Simulator::portValuesInto(double t, const la::Vector &y,
                          la::Vector &vals)
{
    vals.resize(plan_.outPortCount());
    if (spec_.mode == SimMode::Bandwidth) {
        std::copy(y.begin(), y.end(), vals.begin());
        return;
    }
    syncStages();
    plan_.evalIdealPorts(t, y, stages, spec_, ws_);
    std::copy(ws_.vals.begin(), ws_.vals.end(), vals.begin());
}

double
Simulator::outputValue(PortRef out) const
{
    panicIf(!has_run, "Simulator::outputValue before run()");
    return last_port_values[flatOutput(out)];
}

double
Simulator::inputValue(PortRef in) const
{
    panicIf(!has_run, "Simulator::inputValue before run()");
    return plan_.inputSum(plan_.flatInput(in), last_port_values);
}

double
Simulator::inputValueAt(PortRef in, double t, const la::Vector &y)
{
    // Probes may fire before any run(); pick up parameter edits.
    plan_.refreshParams(net, spec_, ws_);
    std::size_t row = plan_.flatInput(in);
    if (spec_.mode == SimMode::Bandwidth)
        return plan_.inputSum(row, y);
    syncStages();
    plan_.evalIdealPorts(t, y, stages, spec_, ws_);
    return plan_.inputSum(row, ws_.vals);
}

std::int64_t
Simulator::adcReadCode(BlockId adc)
{
    fatalIf(net.kind(adc) != BlockKind::Adc,
            "adcReadCode: block is not an ADC");
    double v = inputValue(net.in(adc, 0));
    if (std::fabs(v) > spec_.linear_range)
        latches[adc.v] = 1;
    v += rng.gaussian(0.0, spec_.adc_noise_sigma);
    return quantizeCode(v, spec_.adc_bits);
}

double
Simulator::adcRead(BlockId adc)
{
    return codeToValue(adcReadCode(adc), spec_.adc_bits);
}

double
Simulator::adcReadAveraged(BlockId adc, std::size_t samples)
{
    fatalIf(samples == 0, "adcReadAveraged: need at least one sample");
    double acc = 0.0;
    for (std::size_t s = 0; s < samples; ++s)
        acc += adcRead(adc);
    return acc / static_cast<double>(samples);
}

bool
Simulator::anyException() const
{
    return std::any_of(latches.begin(), latches.end(),
                       [](std::uint8_t v) { return v != 0; });
}

void
Simulator::clearExceptions()
{
    std::fill(latches.begin(), latches.end(), 0);
}

double
Simulator::dcTransfer(BlockId block, double in0, double in1,
                      std::size_t out_port)
{
    BlockKind kind = net.kind(block);
    double raw = 0.0;
    switch (kind) {
      case BlockKind::MulGain:
        raw = net.params(block).gain * in0;
        break;
      case BlockKind::MulVar:
        raw = in0 * in1;
        break;
      case BlockKind::Fanout:
      case BlockKind::Integrator:
        raw = in0;
        break;
      case BlockKind::Dac:
        raw = quantizeValue(net.params(block).level, spec_.dac_bits);
        break;
      case BlockKind::Lut:
        raw = net.params(block).table.size() < 2
                  ? 0.0
                  : lutEval(net.params(block).table, spec_.lut_bits,
                            in0);
        break;
      case BlockKind::ExtIn:
        raw = net.params(block).ext_in
                  ? net.params(block).ext_in(0.0)
                  : 0.0;
        break;
      case BlockKind::Adc:
      case BlockKind::ExtOut:
        return in0; // sinks have no output stage
    }
    bool ovf = false;
    std::size_t f = plan_.flatOutput(PortRef{block, out_port});
    panicIf(out_port >= net.outputCount(block),
            "dcTransfer: output port out of range");
    // Calibration probes must see the unclipped transfer; latches
    // are not exercised on the measurement path.
    return applyStage(stages[f], spec_, raw, ovf,
                      /*monitored=*/false);
}

OutputStage &
Simulator::stage(PortRef out)
{
    // A mutable ref may be written through at any time; re-snapshot
    // the SoA stage lanes before the next evaluation.
    stages_dirty_ = true;
    return stages[flatOutput(out)];
}

const OutputStage &
Simulator::stage(PortRef out) const
{
    return stages[flatOutput(out)];
}

void
Simulator::refreshWiring()
{
    panicIf(net.numBlocks() != plan_.numBlocks(),
            "refreshWiring: block set changed; the die is fixed");
    net.validate();
    plan_ = EvalPlan(net, spec_);
    panicIf(plan_.outPortCount() != stages.size(),
            "refreshWiring: output ports changed; the die is fixed");
    plan_.initWorkspace(net, spec_, ws_);
    stages_dirty_ = true; // the SoA position map was rebuilt
    has_run = false;
}

void
Simulator::setTrimCodes(PortRef out, int offset_code, int gain_code)
{
    OutputStage &s = stages[flatOutput(out)];
    s.trim_offset = trimOffsetFromCode(spec_, offset_code);
    s.trim_gain = trimGainFromCode(spec_, gain_code);
    stages_dirty_ = true;
}

} // namespace aa::circuit
