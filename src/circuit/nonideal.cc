#include "aa/circuit/nonideal.hh"

#include <algorithm>
#include <cmath>

#include "aa/common/logging.hh"

namespace aa::circuit {

OutputStage
OutputStage::sample(const VariationModel &vm, Rng &rng)
{
    OutputStage s;
    if (!vm.enabled)
        return s;
    s.offset = rng.gaussian(0.0, vm.offset_sigma);
    s.gain_err = rng.gaussian(0.0, vm.gain_err_sigma);
    s.cubic = std::fabs(rng.gaussian(0.0, vm.cubic));
    return s;
}

int
trimCodeMin(const AnalogSpec &spec)
{
    return -(1 << (spec.trim_bits - 1));
}

int
trimCodeMax(const AnalogSpec &spec)
{
    return (1 << (spec.trim_bits - 1)) - 1;
}

double
trimOffsetFromCode(const AnalogSpec &spec, int code)
{
    fatalIf(code < trimCodeMin(spec) || code > trimCodeMax(spec),
            "trim offset code ", code, " out of range");
    double step = spec.trim_range /
                  static_cast<double>(1 << (spec.trim_bits - 1));
    return static_cast<double>(code) * step;
}

double
trimGainFromCode(const AnalogSpec &spec, int code)
{
    fatalIf(code < trimCodeMin(spec) || code > trimCodeMax(spec),
            "trim gain code ", code, " out of range");
    double step = spec.trim_range /
                  static_cast<double>(1 << (spec.trim_bits - 1));
    return 1.0 + static_cast<double>(code) * step;
}

std::int64_t
quantizeCode(double v, std::size_t bits)
{
    panicIf(bits == 0 || bits > 24, "quantizeCode: bad bit width");
    auto levels = static_cast<double>((1 << bits) - 1);
    double x = (std::clamp(v, -1.0, 1.0) + 1.0) / 2.0 * levels;
    auto code = static_cast<std::int64_t>(std::llround(x));
    return std::clamp<std::int64_t>(code, 0, (1 << bits) - 1);
}

double
codeToValue(std::int64_t code, std::size_t bits)
{
    panicIf(bits == 0 || bits > 24, "codeToValue: bad bit width");
    auto levels = static_cast<double>((1 << bits) - 1);
    return static_cast<double>(code) / levels * 2.0 - 1.0;
}

double
quantizeValue(double v, std::size_t bits)
{
    return codeToValue(quantizeCode(v, bits), bits);
}

} // namespace aa::circuit
