/**
 * @file
 * Electrical specification of an analog accelerator design.
 *
 * Values default to the prototype chip of Guo et al. (65 nm, 20 KHz
 * analog bandwidth, 8-bit ADC/DAC) that the paper's evaluation is
 * seeded from. Higher-bandwidth design points (80 KHz, 320 KHz,
 * 1.3 MHz) reuse this spec with bandwidth_hz scaled; aa_cost owns the
 * corresponding area/power scaling.
 */

#ifndef AA_CIRCUIT_SPEC_HH
#define AA_CIRCUIT_SPEC_HH

#include <cmath>
#include <cstddef>
#include <numbers>

namespace aa::circuit {

/**
 * Process-variation magnitudes for the per-block non-ideal behaviors
 * the paper's calibration targets (Section III-B): offset bias, gain
 * error, and nonlinearity. All in full-scale-normalized units.
 */
struct VariationModel {
    double offset_sigma = 2e-3;   ///< additive output shift
    double gain_err_sigma = 2e-2; ///< multiplicative error sigma
    double cubic = 5e-3;  ///< odd-order compression y = v - cubic*v^3
    /** Zero disables stochastic variation (ideal process corner). */
    bool enabled = true;
};

/** Dynamics fidelity of the simulation. */
enum class SimMode {
    /**
     * Only integrators hold state; all other blocks respond
     * instantaneously (topologically ordered evaluation). Fast, and
     * an ablation against the bandwidth-limited truth.
     */
    Ideal,
    /**
     * Every block output is a first-order lag toward its ideal value
     * with cutoff = bandwidth_hz — the physical behavior that makes
     * convergence rate bandwidth-limited (paper Section VI-A/B).
     */
    Bandwidth
};

/** Full electrical spec of one accelerator design point. */
struct AnalogSpec {
    /** Analog unit bandwidth; prototype is 20 KHz. */
    double bandwidth_hz = 20e3;

    /**
     * Integrator unity-gain rate: du/dt = rate * input. Tied to the
     * unit bandwidth (omega = 2*pi*f) so that raising the design
     * bandwidth proportionally shortens solve time (Section V-B).
     */
    double integratorRate() const
    {
        return 2.0 * std::numbers::pi * bandwidth_hz;
    }

    /** First-order lag cutoff of non-integrator blocks. */
    double lagRate() const
    {
        // The parasitic poles of combinational blocks sit well above
        // the integrator's unity-gain bandwidth in the prototype.
        return 2.0 * std::numbers::pi * bandwidth_hz * lag_margin;
    }

    /**
     * Ratio of combinational-block parasitic poles to the unit
     * bandwidth. Stability rule: a gradient-flow loop with gain g has
     * its crossover at g * integratorRate(); two branch poles sit at
     * lag_margin * integratorRate(), so lag_margin must comfortably
     * exceed ~3 * max_gain or fast modes ring and can limit-cycle —
     * the paper's "high bandwidth designs are more sensitive to
     * parasitic effects" in circuit form. 100 keeps ~60 degrees of
     * phase margin at max_gain = 32.
     */
    double lag_margin = 100.0;

    /** Signals are normalized so the linear range is [-1, 1]. */
    double linear_range = 1.0;
    /** Hard clip just past the linear range. */
    double clip_range = 1.2;

    /**
     * Compliance of current-mode branches (multiplier, fanout, DAC
     * and LUT outputs). The paper's exception model monitors only
     * integrators and ADCs ("the integrators and ADCs detect when
     * their inputs exceed the linear input range"), and its projected
     * speedups implicitly assume branch currents a_ij*u_j may exceed
     * unit full scale; we follow that model with a generous branch
     * headroom. A per-branch unit-range constraint would cap the
     * effective gain near 1 and erode the projected speedups ~20x —
     * a real tension documented in DESIGN.md.
     */
    double branch_clip_range = 100.0;

    /**
     * Largest constant gain a multiplier can realize. The prototype's
     * exact gain range is unpublished; 32 is a plausible VGA range
     * and is the calibration constant that lands the paper's
     * speed-parity point near 650 grid points (see EXPERIMENTS.md).
     */
    double max_gain = 32.0;

    std::size_t adc_bits = 8;
    std::size_t dac_bits = 8;
    /** Per-sample ADC input-referred noise (full-scale units). */
    double adc_noise_sigma = 1e-3;

    /**
     * The ADC's rate/resolution trade-off (Section II-B: "there is a
     * trade-off between ADC sampling frequency and resolution, so in
     * this work we use only the steady-state result"). Sampling at
     * up to adc_full_res_rate_hz keeps the full adc_bits; each
     * doubling beyond it costs one effective bit, floored at
     * adc_min_bits.
     */
    double adc_full_res_rate_hz = 1e3;
    std::size_t adc_min_bits = 4;

    /** Effective conversion width at a given sampling rate. */
    std::size_t
    effectiveAdcBits(double sample_rate_hz) const
    {
        if (sample_rate_hz <= adc_full_res_rate_hz)
            return adc_bits;
        double lost = std::log2(sample_rate_hz /
                                adc_full_res_rate_hz);
        double bits = static_cast<double>(adc_bits) - lost;
        return bits <= static_cast<double>(adc_min_bits)
                   ? adc_min_bits
                   : static_cast<std::size_t>(bits);
    }
    std::size_t lut_depth = 256;
    std::size_t lut_bits = 8;

    /** Calibration trim DAC range and resolution (Section III-B). */
    double trim_range = 0.05; ///< trims cover +/- this much
    std::size_t trim_bits = 6;

    VariationModel variation;
    SimMode mode = SimMode::Bandwidth;
};

/** The prototype design point (Guo et al., ESSCIRC'15 / JSSC'16). */
AnalogSpec prototypeSpec();

/** A projected design point with scaled bandwidth and a 12-bit ADC. */
AnalogSpec projectedSpec(double bandwidth_hz, std::size_t adc_bits = 12);

} // namespace aa::circuit

#endif // AA_CIRCUIT_SPEC_HH
