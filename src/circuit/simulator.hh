/**
 * @file
 * Continuous-time simulation of a configured analog netlist.
 *
 * The whole circuit becomes one OdeSystem. In SimMode::Bandwidth every
 * output port is a first-order state driven toward its ideal value at
 * the block's cutoff (integrators integrate their input); convergence
 * rate is then genuinely limited by the design's analog bandwidth, as
 * in the paper. SimMode::Ideal keeps state only in integrators and
 * evaluates combinational blocks in topological order — faster, and
 * the paper's idealized-analog ablation.
 *
 * The netlist is lowered once into an EvalPlan (see plan.hh): CSR
 * fan-in adjacency and typed per-kind op lists that the RHS sweeps
 * with zero allocations. Reconfigurable parameters (gains, DAC
 * levels, LUT tables) are snapshotted into the plan workspace at the
 * start of every run; mutating them mid-run is not supported.
 *
 * This plays the role of the authors' Cadence Virtuoso circuit
 * simulations: small configurations run here to validate and
 * calibrate the analytical large-N model in aa_cost.
 *
 * Thread-safety: a Simulator is single-threaded; parallel sweeps run
 * one Simulator (one die) per thread over a shared immutable Netlist.
 */

#ifndef AA_CIRCUIT_SIMULATOR_HH
#define AA_CIRCUIT_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "aa/circuit/netlist.hh"
#include "aa/circuit/nonideal.hh"
#include "aa/circuit/plan.hh"
#include "aa/circuit/spec.hh"
#include "aa/ode/integrator.hh"
#include "aa/ode/system.hh"

namespace aa::circuit {

/** Options for one computation run (execStart .. execStop). */
struct RunOptions {
    /** Wall-clock budget in seconds of *analog* time (the chip's
     *  setTimeout). Infinite is allowed with a steady stop. */
    double timeout = 1.0;

    /**
     * Steady-state stop: halt when every integrator's |du/dt| falls
     * below this rate (in full-scale units per second). <= 0 runs to
     * the timeout.
     */
    double steady_rate_tol = -1.0;

    /** ODE method used to simulate the analog dynamics. */
    ode::Method method = ode::Method::Dopri5;
    double abs_tol = 1e-9;
    double rel_tol = 1e-7;
    std::size_t max_steps = 20'000'000;

    /** Observer over (analog time, full state vector). */
    std::function<void(double, const la::Vector &)> observer;
};

/** Outcome of one run. */
struct RunResult {
    double analog_time = 0.0; ///< seconds of simulated analog time
    std::size_t steps = 0;
    std::size_t rhs_evals = 0;
    ode::StopReason reason = ode::StopReason::ReachedTEnd;
    bool any_exception = false;
};

/** Simulates one configured netlist on one (seeded) die. */
class Simulator
{
  public:
    /**
     * Build the simulation. The netlist is referenced, not copied:
     * reconfiguring params between runs is allowed (gain/level/ic
     * changes), but adding blocks or connections requires a new
     * Simulator. `die_seed` fixes the process-variation corner.
     */
    Simulator(const Netlist &netlist, const AnalogSpec &spec,
              std::uint64_t die_seed);

    /** Run the dynamics from the configured initial conditions. */
    RunResult run(const RunOptions &opts);

    /** Number of ODE states in the current mode. */
    std::size_t stateCount() const;

    /**
     * Index of an output port's value inside the run's state vector
     * (for scope probes attached via RunOptions::observer), or -1 if
     * the port is not a state in the current mode (combinational
     * outputs under SimMode::Ideal).
     */
    std::size_t stateIndexOf(PortRef out) const;

    /** Value of an output port at the end of the last run. */
    double outputValue(PortRef out) const;
    /** Summed current into an input port at the end of the last run. */
    double inputValue(PortRef in) const;

    /**
     * Summed current into an input port implied by a mid-run state
     * snapshot (as delivered to RunOptions::observer) — the probe
     * behind waveform-sampling ADCs. Allocation-free: evaluates into
     * the simulator's internal plan workspace.
     */
    double inputValueAt(PortRef in, double t, const la::Vector &y);

    /**
     * All flat output-port values implied by a state snapshot,
     * written into caller storage (resized once; no per-call heap
     * traffic after that).
     */
    void portValuesInto(double t, const la::Vector &y,
                        la::Vector &vals);

    /**
     * Production right-hand side dydt <- f(t, y) through the compiled
     * plan (what run() integrates). Public so equivalence tests and
     * benchmarks can drive single evaluations; zero allocations.
     */
    void evalRhs(double t, const la::Vector &y, la::Vector &dydt);

    /**
     * The pre-plan block-walk RHS, kept as an independent oracle: it
     * rebuilds its own wiring tables from the netlist on every call
     * and dispatches per block kind. Slow and allocation-heavy; only
     * for validating the plan (tests/circuit/plan_equivalence_test).
     */
    void evalRhsReference(double t, const la::Vector &y,
                          la::Vector &dydt);

    /**
     * The plan's AoS typed-op walker (the pre-SoA production path),
     * kept as a second oracle between evalRhs (SoA stage tables) and
     * evalRhsReference (netlist block walk). Zero allocations, same
     * workspace; only for the plan-equivalence sweeps.
     */
    void evalRhsAos(double t, const la::Vector &y, la::Vector &dydt);

    /**
     * Read an ADC: quantizes the sampled node (plus per-sample input
     * noise) to the spec's adc_bits. Returns the digital code.
     */
    std::int64_t adcReadCode(BlockId adc);
    /** Code mapped back to a full-scale value. */
    double adcRead(BlockId adc);
    /** Average of n samples (the ISA's analogAvg instruction). */
    double adcReadAveraged(BlockId adc, std::size_t samples);

    /** Sticky per-block overflow latches (the exception vector). */
    const std::vector<std::uint8_t> &exceptionLatches() const
    {
        return latches;
    }
    bool anyException() const;
    void clearExceptions();

    /**
     * DC transfer of one block's output stage including its errors
     * and trims (used by the host calibration loop, which wires the
     * unit between a DAC and an ADC). Not defined for integrators'
     * accumulation — for them this returns the input-stage drift
     * contribution (what multiplies the integrator rate).
     */
    double dcTransfer(BlockId block, double in0, double in1 = 0.0,
                      std::size_t out_port = 0);

    /** Access an output port's stage (tests and calibration). */
    OutputStage &stage(PortRef out);
    const OutputStage &stage(PortRef out) const;

    /** Set trims from quantized host codes (trim DAC registers). */
    void setTrimCodes(PortRef out, int offset_code, int gain_code);

    /**
     * Re-derive wiring after the referenced netlist's *connections*
     * changed (the chip reconfiguring its crossbar between problems).
     * Recompiles the evaluation plan; the block set must be unchanged
     * — the die and its process variation are fixed; panics
     * otherwise.
     */
    void refreshWiring();

    const AnalogSpec &spec() const { return spec_; }

    /** The compiled evaluation plan (tests and diagnostics). */
    const EvalPlan &plan() const { return plan_; }

  private:
    class Dynamics; ///< the OdeSystem bridge onto the plan

    std::size_t flatOutput(PortRef out) const;
    la::Vector initialState() const;

    /** Re-snapshot output stages into the plan's SoA lanes when a
     *  stage()/setTrimCodes edit (or a plan rebuild) invalidated
     *  them. Cheap flag check on the hot path. */
    void
    syncStages()
    {
        if (stages_dirty_) {
            plan_.refreshStages(stages, ws_);
            stages_dirty_ = false;
        }
    }

    const Netlist &net;
    AnalogSpec spec_;
    Rng rng;

    EvalPlan plan_;   ///< compiled structure (rebuilt on refreshWiring)
    PlanWorkspace ws_; ///< param snapshot + port-value scratch

    std::vector<OutputStage> stages; ///< flat output port -> errors

    mutable std::vector<std::uint8_t> latches; ///< per block
    bool stages_dirty_ = true; ///< SoA stage lanes need a re-snapshot
    la::Vector last_state;
    la::Vector last_port_values; ///< per flat output, at run end
    double last_time = 0.0;
    bool has_run = false;
};

} // namespace aa::circuit

#endif // AA_CIRCUIT_SIMULATOR_HH
