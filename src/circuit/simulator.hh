/**
 * @file
 * Continuous-time simulation of a configured analog netlist.
 *
 * The whole circuit becomes one OdeSystem. In SimMode::Bandwidth every
 * output port is a first-order state driven toward its ideal value at
 * the block's cutoff (integrators integrate their input); convergence
 * rate is then genuinely limited by the design's analog bandwidth, as
 * in the paper. SimMode::Ideal keeps state only in integrators and
 * evaluates combinational blocks in topological order — faster, and
 * the paper's idealized-analog ablation.
 *
 * This plays the role of the authors' Cadence Virtuoso circuit
 * simulations: small configurations run here to validate and
 * calibrate the analytical large-N model in aa_cost.
 */

#ifndef AA_CIRCUIT_SIMULATOR_HH
#define AA_CIRCUIT_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "aa/circuit/netlist.hh"
#include "aa/circuit/nonideal.hh"
#include "aa/circuit/spec.hh"
#include "aa/ode/integrator.hh"
#include "aa/ode/system.hh"

namespace aa::circuit {

/** Options for one computation run (execStart .. execStop). */
struct RunOptions {
    /** Wall-clock budget in seconds of *analog* time (the chip's
     *  setTimeout). Infinite is allowed with a steady stop. */
    double timeout = 1.0;

    /**
     * Steady-state stop: halt when every integrator's |du/dt| falls
     * below this rate (in full-scale units per second). <= 0 runs to
     * the timeout.
     */
    double steady_rate_tol = -1.0;

    /** ODE method used to simulate the analog dynamics. */
    ode::Method method = ode::Method::Dopri5;
    double abs_tol = 1e-9;
    double rel_tol = 1e-7;
    std::size_t max_steps = 20'000'000;

    /** Observer over (analog time, full state vector). */
    std::function<void(double, const la::Vector &)> observer;
};

/** Outcome of one run. */
struct RunResult {
    double analog_time = 0.0; ///< seconds of simulated analog time
    std::size_t steps = 0;
    std::size_t rhs_evals = 0;
    ode::StopReason reason = ode::StopReason::ReachedTEnd;
    bool any_exception = false;
};

/** Simulates one configured netlist on one (seeded) die. */
class Simulator
{
  public:
    /**
     * Build the simulation. The netlist is referenced, not copied:
     * reconfiguring params between runs is allowed (gain/level/ic
     * changes), but adding blocks or connections requires a new
     * Simulator. `die_seed` fixes the process-variation corner.
     */
    Simulator(const Netlist &netlist, const AnalogSpec &spec,
              std::uint64_t die_seed);

    /** Run the dynamics from the configured initial conditions. */
    RunResult run(const RunOptions &opts);

    /** Number of ODE states in the current mode. */
    std::size_t stateCount() const;

    /**
     * Index of an output port's value inside the run's state vector
     * (for scope probes attached via RunOptions::observer), or -1 if
     * the port is not a state in the current mode (combinational
     * outputs under SimMode::Ideal).
     */
    std::size_t stateIndexOf(PortRef out) const;

    /** Value of an output port at the end of the last run. */
    double outputValue(PortRef out) const;
    /** Summed current into an input port at the end of the last run. */
    double inputValue(PortRef in) const;

    /**
     * Summed current into an input port implied by a mid-run state
     * snapshot (as delivered to RunOptions::observer) — the probe
     * behind waveform-sampling ADCs.
     */
    double inputValueAt(PortRef in, double t, const la::Vector &y);

    /**
     * Read an ADC: quantizes the sampled node (plus per-sample input
     * noise) to the spec's adc_bits. Returns the digital code.
     */
    std::int64_t adcReadCode(BlockId adc);
    /** Code mapped back to a full-scale value. */
    double adcRead(BlockId adc);
    /** Average of n samples (the ISA's analogAvg instruction). */
    double adcReadAveraged(BlockId adc, std::size_t samples);

    /** Sticky per-block overflow latches (the exception vector). */
    const std::vector<std::uint8_t> &exceptionLatches() const
    {
        return latches;
    }
    bool anyException() const;
    void clearExceptions();

    /**
     * DC transfer of one block's output stage including its errors
     * and trims (used by the host calibration loop, which wires the
     * unit between a DAC and an ADC). Not defined for integrators'
     * accumulation — for them this returns the input-stage drift
     * contribution (what multiplies the integrator rate).
     */
    double dcTransfer(BlockId block, double in0, double in1 = 0.0,
                      std::size_t out_port = 0);

    /** Access an output port's stage (tests and calibration). */
    OutputStage &stage(PortRef out);
    const OutputStage &stage(PortRef out) const;

    /** Set trims from quantized host codes (trim DAC registers). */
    void setTrimCodes(PortRef out, int offset_code, int gain_code);

    /**
     * Re-derive wiring after the referenced netlist's *connections*
     * changed (the chip reconfiguring its crossbar between problems).
     * The block set must be unchanged — the die and its process
     * variation are fixed; panics otherwise.
     */
    void refreshWiring();

    const AnalogSpec &spec() const { return spec_; }

  private:
    class Dynamics; ///< the OdeSystem implementation

    std::size_t flatOutput(PortRef out) const;
    void buildIndex();
    void buildTopoOrder();
    la::Vector initialState() const;

    const Netlist &net;
    AnalogSpec spec_;
    Rng rng;

    /** Flat output-port table. */
    std::vector<PortRef> out_ports;          ///< flat -> port
    std::vector<std::size_t> out_base;       ///< block -> first flat
    std::vector<OutputStage> stages;         ///< flat -> errors
    /** Input wiring: for each block, per input port, driver flats. */
    std::vector<std::vector<std::vector<std::size_t>>> inputs;

    /** Integrator flats (state layout in Ideal mode). */
    std::vector<std::size_t> integ_flats;
    /** Topological order of non-source blocks (Ideal mode). */
    std::vector<std::size_t> topo;
    /** Blocks with inputs but no outputs (ADC, ExtOut): overflow
     *  checks watch their input nodes. */
    std::vector<std::size_t> sink_blocks;

    mutable std::vector<std::uint8_t> latches; ///< per block
    la::Vector last_state;
    la::Vector last_port_values; ///< per flat output, at run end
    double last_time = 0.0;
    bool has_run = false;
};

} // namespace aa::circuit

#endif // AA_CIRCUIT_SIMULATOR_HH
