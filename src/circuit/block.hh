/**
 * @file
 * Analog functional-unit descriptions.
 *
 * Mirrors the prototype chip's unit inventory (paper Figures 2/3):
 * integrators, multipliers (constant-gain VGA mode and four-quadrant
 * variable mode), current-copying fanouts, DACs for constant biases,
 * ADCs for readout, SRAM lookup tables for nonlinear functions, and
 * external analog input/output pads.
 *
 * Signals are currents: joining branches sums values for free, but a
 * current cannot feed two places — copying requires a fanout block.
 * The Netlist enforces that discipline.
 */

#ifndef AA_CIRCUIT_BLOCK_HH
#define AA_CIRCUIT_BLOCK_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace aa::circuit {

/** Kinds of analog functional units. */
enum class BlockKind {
    Integrator, ///< du/dt = rate * input; 1 in, 1 out
    MulGain,    ///< out = gain * in (VGA); 1 in, 1 out
    MulVar,     ///< out = in0 * in1 (four-quadrant); 2 in, 1 out
    Fanout,     ///< current mirror; 1 in, `copies` outs
    Dac,        ///< constant bias source; 0 in, 1 out
    Adc,        ///< readout sampler; 1 in, 0 out
    Lut,        ///< nonlinear function table; 1 in, 1 out
    ExtIn,      ///< off-chip analog input; 0 in, 1 out
    ExtOut      ///< off-chip analog output; 1 in, 0 out
};

const char *blockKindName(BlockKind k);

/** Per-instance configuration of a block. */
struct BlockParams {
    double ic = 0.0;   ///< Integrator initial condition
    double gain = 1.0; ///< MulGain coefficient
    double level = 0.0; ///< Dac constant output
    std::size_t copies = 2; ///< Fanout output count (1..4)
    /**
     * Lut contents: samples of f over the input range [-1, 1],
     * evaluated with linear interpolation. Quantization to the spec's
     * lut_bits happens when the table is loaded.
     */
    std::vector<double> table;
    /** ExtIn stimulus as a function of time (empty = 0). */
    std::function<double(double)> ext_in;
    std::string name; ///< optional debug label
};

/** Number of input ports for a block kind/params combination. */
std::size_t numInputs(BlockKind kind);

/** Number of output ports (depends on copies for Fanout). */
std::size_t numOutputs(BlockKind kind, const BlockParams &params);

} // namespace aa::circuit

#endif // AA_CIRCUIT_BLOCK_HH
