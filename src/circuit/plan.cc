#include "aa/circuit/plan.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "aa/common/logging.hh"

namespace aa::circuit {

namespace {

/** Piecewise-linear LUT evaluation over a pre-quantized table. */
double
lutEvalQuantized(const std::vector<double> &table, double x)
{
    double clamped = std::clamp(x, -1.0, 1.0);
    double pos = (clamped + 1.0) / 2.0 *
                 static_cast<double>(table.size() - 1);
    auto i0 = static_cast<std::size_t>(pos);
    if (i0 >= table.size() - 1)
        i0 = table.size() - 2;
    double w = pos - static_cast<double>(i0);
    return (1.0 - w) * table[i0] + w * table[i0 + 1];
}

bool
isComb(BlockKind kind)
{
    switch (kind) {
      case BlockKind::MulGain:
      case BlockKind::MulVar:
      case BlockKind::Fanout:
      case BlockKind::Lut:
        return true;
      default:
        return false;
    }
}

/**
 * applyStage, reading the error factors from the workspace's SoA
 * stage lanes at position p instead of gathering an OutputStage
 * struct. The floating-point expression shape (and the ge1 = 1 +
 * gain_err pre-add) is byte-for-byte the one applyStage evaluates,
 * so lane results are bit-identical to the AoS walker's.
 */
inline double
applyLanes(const PlanWorkspace &ws, std::size_t p,
           const AnalogSpec &spec, double raw, bool &overflow,
           bool monitored)
{
    double v = raw * ws.st_ge1[p] * ws.st_tg[p] + ws.st_off[p] +
               ws.st_toff[p];
    v = v - ws.st_cub[p] * v * v * v /
                (monitored ? 1.0
                           : spec.branch_clip_range *
                                 spec.branch_clip_range);
    if (!monitored)
        return std::clamp(v, -spec.branch_clip_range,
                          spec.branch_clip_range);
    if (std::fabs(v) > spec.linear_range)
        overflow = true;
    return std::clamp(v, -spec.clip_range, spec.clip_range);
}

} // namespace

EvalPlan::EvalPlan(const Netlist &net, const AnalogSpec &spec)
{
    num_blocks = net.numBlocks();

    // ---- Port layout (block-major, legacy-identical) -------------
    out_base.assign(num_blocks, 0);
    in_base.assign(num_blocks, 0);
    std::size_t num_in_ports = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
        BlockId id{b};
        out_base[b] = out_ports.size();
        in_base[b] = num_in_ports;
        num_in_ports += net.inputCount(id);
        std::size_t nout = net.outputCount(id);
        for (std::size_t o = 0; o < nout; ++o) {
            out_ports.push_back(PortRef{id, o});
            if (net.kind(id) == BlockKind::Integrator)
                integ_flats.push_back(out_ports.size() - 1);
        }
    }
    panicIf(out_ports.size() >
                    std::numeric_limits<PlanIdx>::max() ||
                num_in_ports > std::numeric_limits<PlanIdx>::max(),
            "EvalPlan: netlist exceeds 2^32 ports");

    // ---- CSR fan-in from the connection list ---------------------
    // Two passes: count, then fill with per-row cursors so the source
    // order within one input node matches the connection order (and
    // therefore the legacy nested-vector summation order exactly).
    const auto &conns = net.connections();
    in_offsets.assign(num_in_ports + 1, 0);
    for (const auto &c : conns)
        ++in_offsets[flatInput(c.to) + 1];
    for (std::size_t i = 1; i <= num_in_ports; ++i)
        in_offsets[i] += in_offsets[i - 1];
    in_srcs.resize(conns.size());
    std::vector<std::size_t> cursor(in_offsets.begin(),
                                    in_offsets.end() - 1);
    for (const auto &c : conns)
        in_srcs[cursor[flatInput(c.to)]++] = flatOutput(c.from);

    // ---- One-shot block adjacency + Kahn with levels -------------
    // The from-block -> to-blocks index kills the O(blocks x
    // connections) rescan the legacy topo sort performed per ready
    // block.
    std::vector<std::size_t> adj_off(num_blocks + 1, 0), adj_dst;
    for (const auto &c : conns)
        ++adj_off[c.from.block.v + 1];
    for (std::size_t b = 1; b <= num_blocks; ++b)
        adj_off[b] += adj_off[b - 1];
    adj_dst.resize(conns.size());
    {
        std::vector<std::size_t> acur(adj_off.begin(),
                                      adj_off.end() - 1);
        for (const auto &c : conns)
            adj_dst[acur[c.from.block.v]++] = c.to.block.v;
    }

    std::vector<std::size_t> indeg(num_blocks, 0);
    for (const auto &c : conns) {
        if (isComb(net.kind(c.from.block)) &&
            isComb(net.kind(c.to.block)))
            ++indeg[c.to.block.v];
    }

    constexpr std::size_t kUnleveled =
        std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> level(num_blocks, kUnleveled);
    std::deque<std::size_t> ready;
    std::size_t comb_count = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
        if (!isComb(net.kind(BlockId{b})))
            continue;
        ++comb_count;
        if (indeg[b] == 0) {
            level[b] = 0;
            ready.push_back(b);
        }
    }
    std::size_t sorted = 0, max_level = 0;
    while (!ready.empty()) {
        std::size_t b = ready.front();
        ready.pop_front();
        ++sorted;
        max_level = std::max(max_level, level[b]);
        for (std::size_t e = adj_off[b]; e < adj_off[b + 1]; ++e) {
            std::size_t dst = adj_dst[e];
            if (!isComb(net.kind(BlockId{dst})))
                continue;
            level[dst] = level[dst] == kUnleveled
                             ? level[b] + 1
                             : std::max(level[dst], level[b] + 1);
            if (--indeg[dst] == 0)
                ready.push_back(dst);
        }
    }
    has_comb_cycle = sorted != comb_count;
    fatalIf(has_comb_cycle && spec.mode == SimMode::Ideal,
            "EvalPlan: algebraic loop through combinational blocks; "
            "SimMode::Ideal cannot evaluate it, use "
            "SimMode::Bandwidth");

    // Bucket combinational blocks by level (block-id order inside a
    // level keeps emission deterministic); blocks left on a cycle
    // (Bandwidth mode only) land in one extra trailing level.
    std::size_t num_levels = comb_count == 0 ? 0 : max_level + 1;
    std::vector<std::vector<std::size_t>> buckets(num_levels +
                                                  (has_comb_cycle ? 1
                                                                  : 0));
    for (std::size_t b = 0; b < num_blocks; ++b) {
        if (!isComb(net.kind(BlockId{b})))
            continue;
        if (level[b] == kUnleveled)
            buckets[num_levels].push_back(b);
        else
            buckets[level[b]].push_back(b);
    }

    // ---- Emit typed op lists -------------------------------------
    auto u32 = [](std::size_t v) { return static_cast<PlanIdx>(v); };
    for (std::size_t b = 0; b < num_blocks; ++b) {
        BlockId id{b};
        switch (net.kind(id)) {
          case BlockKind::Integrator:
            integ_ops.push_back({u32(out_base[b]), u32(in_base[b]),
                                 u32(b)});
            break;
          case BlockKind::Dac:
            dac_ops.push_back({u32(out_base[b]), u32(b)});
            break;
          case BlockKind::ExtIn:
            extin_ops.push_back({u32(out_base[b]), u32(b)});
            break;
          case BlockKind::Adc:
          case BlockKind::ExtOut:
            sink_ops.push_back({u32(in_base[b]), u32(b)});
            break;
          default:
            break; // combinational: emitted level by level below
        }
    }
    for (const auto &bucket : buckets) {
        LevelSlice lv;
        lv.gain_begin = u32(gain_ops.size());
        lv.var_begin = u32(var_ops.size());
        lv.fan_begin = u32(fan_ops.size());
        lv.lut_begin = u32(lut_ops.size());
        for (std::size_t b : bucket) {
            BlockId id{b};
            switch (net.kind(id)) {
              case BlockKind::MulGain:
                gain_ops.push_back({u32(out_base[b]), u32(in_base[b]),
                                    u32(b)});
                break;
              case BlockKind::MulVar:
                var_ops.push_back({u32(out_base[b]), u32(in_base[b]),
                                   u32(in_base[b] + 1)});
                break;
              case BlockKind::Fanout:
                for (std::size_t o = 0; o < net.outputCount(id); ++o)
                    fan_ops.push_back({u32(out_base[b] + o),
                                       u32(in_base[b])});
                break;
              case BlockKind::Lut:
                lut_ops.push_back({u32(out_base[b]), u32(in_base[b]),
                                   u32(b)});
                break;
              default:
                panic("EvalPlan: non-combinational block in level");
            }
        }
        lv.gain_end = u32(gain_ops.size());
        lv.var_end = u32(var_ops.size());
        lv.fan_end = u32(fan_ops.size());
        lv.lut_end = u32(lut_ops.size());
        levels.push_back(lv);
    }

    buildSoaTables();
}

void
EvalPlan::buildSoaTables()
{
    auto u32 = [](std::size_t v) { return static_cast<PlanIdx>(v); };

    in_off32.resize(in_offsets.size());
    for (std::size_t i = 0; i < in_offsets.size(); ++i)
        in_off32[i] = u32(in_offsets[i]);
    in_src32.resize(in_srcs.size());
    for (std::size_t i = 0; i < in_srcs.size(); ++i)
        in_src32[i] = u32(in_srcs[i]);

    auto fanin1 = [&](PlanIdx row) {
        return in_offsets[row + 1] - in_offsets[row] == 1;
    };
    auto soleSrc = [&](PlanIdx row) {
        return u32(in_srcs[in_offsets[row]]);
    };

    // Partition each level's ops into the unit-source lanes (flat
    // gather-multiply-scatter, no CSR indirection) and the
    // multi-source CSR lanes. Ops within one level are independent —
    // a comb->comb edge forces distinct levels — so splitting a
    // level's emission order is observation-equivalent; each op's own
    // arithmetic (and the multi lane's summation order) is unchanged.
    for (const LevelSlice &lv : levels) {
        SoaSlice s;
        s.gu0 = u32(gu_out.size());
        s.gm0 = u32(gm_out.size());
        for (PlanIdx k = lv.gain_begin; k < lv.gain_end; ++k) {
            const GainOp &op = gain_ops[k];
            if (fanin1(op.in)) {
                gu_out.push_back(op.out);
                gu_src.push_back(soleSrc(op.in));
                gu_op.push_back(k);
            } else {
                gm_out.push_back(op.out);
                gm_row.push_back(op.in);
                gm_op.push_back(k);
            }
        }
        s.gu1 = u32(gu_out.size());
        s.gm1 = u32(gm_out.size());

        s.vu0 = u32(vu_out.size());
        s.vm0 = u32(vm_out.size());
        for (PlanIdx k = lv.var_begin; k < lv.var_end; ++k) {
            const MulVarOp &op = var_ops[k];
            if (fanin1(op.in0) && fanin1(op.in1)) {
                vu_out.push_back(op.out);
                vu_src0.push_back(soleSrc(op.in0));
                vu_src1.push_back(soleSrc(op.in1));
            } else {
                vm_out.push_back(op.out);
                vm_row0.push_back(op.in0);
                vm_row1.push_back(op.in1);
            }
        }
        s.vu1 = u32(vu_out.size());
        s.vm1 = u32(vm_out.size());

        s.fu0 = u32(fu_out.size());
        s.fm0 = u32(fm_out.size());
        for (PlanIdx k = lv.fan_begin; k < lv.fan_end; ++k) {
            const FanOp &op = fan_ops[k];
            if (fanin1(op.in)) {
                fu_out.push_back(op.out);
                fu_src.push_back(soleSrc(op.in));
            } else {
                fm_out.push_back(op.out);
                fm_row.push_back(op.in);
            }
        }
        s.fu1 = u32(fu_out.size());
        s.fm1 = u32(fm_out.size());

        s.lu0 = u32(lu_out.size());
        s.lm0 = u32(lm_out.size());
        for (PlanIdx k = lv.lut_begin; k < lv.lut_end; ++k) {
            const LutOp &op = lut_ops[k];
            if (fanin1(op.in)) {
                lu_out.push_back(op.out);
                lu_src.push_back(soleSrc(op.in));
                lu_op.push_back(k);
            } else {
                lm_out.push_back(op.out);
                lm_row.push_back(op.in);
                lm_op.push_back(k);
            }
        }
        s.lu1 = u32(lu_out.size());
        s.lm1 = u32(lm_out.size());

        soa_levels.push_back(s);
    }

    // Stage-lane position map: family by family, so every sweep reads
    // its error lanes sequentially.
    sb_gu = 0;
    sb_gm = sb_gu + u32(gu_out.size());
    sb_vu = sb_gm + u32(gm_out.size());
    sb_vm = sb_vu + u32(vu_out.size());
    sb_fu = sb_vm + u32(vm_out.size());
    sb_fm = sb_fu + u32(fu_out.size());
    sb_lu = sb_fm + u32(fm_out.size());
    sb_lm = sb_lu + u32(lu_out.size());
    sb_dac = sb_lm + u32(lm_out.size());
    sb_ext = sb_dac + u32(dac_ops.size());
    sb_integ = sb_ext + u32(extin_ops.size());

    stage_out.clear();
    stage_out.reserve(sb_integ + integ_ops.size());
    for (const auto &v :
         {std::cref(gu_out), std::cref(gm_out), std::cref(vu_out),
          std::cref(vm_out), std::cref(fu_out), std::cref(fm_out),
          std::cref(lu_out), std::cref(lm_out)})
        stage_out.insert(stage_out.end(), v.get().begin(),
                         v.get().end());
    for (const DacOp &op : dac_ops)
        stage_out.push_back(op.out);
    for (const ExtInOp &op : extin_ops)
        stage_out.push_back(op.out);
    for (const IntegOp &op : integ_ops)
        stage_out.push_back(op.out);
}

void
EvalPlan::initWorkspace(const Netlist &net, const AnalogSpec &spec,
                        PlanWorkspace &ws) const
{
    ws.vals.resize(out_ports.size());
    ws.gain.resize(gain_ops.size());
    ws.dac.resize(dac_ops.size());
    ws.lut.resize(lut_ops.size());
    ws.ext.resize(extin_ops.size());
    refreshParams(net, spec, ws);
}

void
EvalPlan::refreshParams(const Netlist &net, const AnalogSpec &spec,
                        PlanWorkspace &ws) const
{
    for (std::size_t i = 0; i < gain_ops.size(); ++i)
        ws.gain[i] = net.params(BlockId{gain_ops[i].blk}).gain;
    for (std::size_t i = 0; i < dac_ops.size(); ++i)
        ws.dac[i] = quantizeValue(
            net.params(BlockId{dac_ops[i].blk}).level, spec.dac_bits);
    for (std::size_t i = 0; i < lut_ops.size(); ++i) {
        const auto &table = net.params(BlockId{lut_ops[i].blk}).table;
        // Unconfigured LUTs sit unwired (validate() enforces it) and
        // contribute a raw 0 like the legacy walk.
        if (table.size() < 2) {
            ws.lut[i].clear();
            continue;
        }
        ws.lut[i].resize(table.size());
        for (std::size_t j = 0; j < table.size(); ++j)
            ws.lut[i][j] = quantizeValue(table[j], spec.lut_bits);
    }
    for (std::size_t i = 0; i < extin_ops.size(); ++i) {
        const auto &fn = net.params(BlockId{extin_ops[i].blk}).ext_in;
        ws.ext[i] = fn ? &fn : nullptr;
    }

    // Mirror the gain snapshot into the SoA lane orders.
    ws.gain_u.resize(gu_op.size());
    for (std::size_t j = 0; j < gu_op.size(); ++j)
        ws.gain_u[j] = ws.gain[gu_op[j]];
    ws.gain_m.resize(gm_op.size());
    for (std::size_t j = 0; j < gm_op.size(); ++j)
        ws.gain_m[j] = ws.gain[gm_op[j]];
}

void
EvalPlan::refreshStages(const std::vector<OutputStage> &stages,
                        PlanWorkspace &ws) const
{
    const std::size_t n = stage_out.size();
    ws.st_ge1.resize(n);
    ws.st_tg.resize(n);
    ws.st_off.resize(n);
    ws.st_toff.resize(n);
    ws.st_cub.resize(n);
    bool ident = true;
    for (std::size_t p = 0; p < n; ++p) {
        const OutputStage &s = stages[stage_out[p]];
        ws.st_ge1[p] = 1.0 + s.gain_err;
        ws.st_tg[p] = s.trim_gain;
        ws.st_off[p] = s.offset;
        ws.st_toff[p] = s.trim_offset;
        ws.st_cub[p] = s.cubic;
        ident = ident && s.gain_err == 0.0 && s.trim_gain == 1.0 &&
                s.offset == 0.0 && s.trim_offset == 0.0 &&
                s.cubic == 0.0;
    }
    ws.stages_identity = ident;
    ws.stages_valid = true;
}

double
EvalPlan::integDeriv(const IntegOp &op, double state,
                     const la::Vector &vals,
                     const std::vector<OutputStage> &stages,
                     const AnalogSpec &spec,
                     std::vector<std::uint8_t> &latches) const
{
    bool ovf = false;
    double drive = applyStage(stages[op.out], spec,
                              inputSum(op.in, vals), ovf);
    if (ovf)
        latches[op.blk] = 1;
    if (std::fabs(state) > spec.linear_range)
        latches[op.blk] = 1;
    double d = spec.integratorRate() * drive;
    // Saturated integrators stop accumulating outward.
    if ((state >= spec.clip_range && d > 0.0) ||
        (state <= -spec.clip_range && d < 0.0)) {
        d = 0.0;
    }
    return d;
}

void
EvalPlan::evalSources(double t, la::Vector &vals,
                      const std::vector<OutputStage> &stages,
                      const AnalogSpec &spec,
                      const PlanWorkspace &ws) const
{
    // Branch stages are unmonitored (only integrators and ADCs carry
    // comparators, Section III-B) — overflow flags are ignored here.
    bool ovf = false;
    for (std::size_t i = 0; i < dac_ops.size(); ++i)
        vals[dac_ops[i].out] = applyStage(stages[dac_ops[i].out],
                                          spec, ws.dac[i], ovf,
                                          /*monitored=*/false);
    for (std::size_t i = 0; i < extin_ops.size(); ++i) {
        double raw = ws.ext[i] ? (*ws.ext[i])(t) : 0.0;
        vals[extin_ops[i].out] = applyStage(stages[extin_ops[i].out],
                                            spec, raw, ovf,
                                            /*monitored=*/false);
    }
}

void
EvalPlan::evalCombLevel(const LevelSlice &lv, double,
                        la::Vector &vals,
                        const std::vector<OutputStage> &stages,
                        const AnalogSpec &spec,
                        const PlanWorkspace &ws) const
{
    bool ovf = false;
    for (std::size_t k = lv.gain_begin; k < lv.gain_end; ++k) {
        const GainOp &op = gain_ops[k];
        vals[op.out] = applyStage(stages[op.out], spec,
                                  ws.gain[k] * inputSum(op.in, vals),
                                  ovf, /*monitored=*/false);
    }
    for (std::size_t k = lv.var_begin; k < lv.var_end; ++k) {
        const MulVarOp &op = var_ops[k];
        vals[op.out] = applyStage(stages[op.out], spec,
                                  inputSum(op.in0, vals) *
                                      inputSum(op.in1, vals),
                                  ovf, /*monitored=*/false);
    }
    for (std::size_t k = lv.fan_begin; k < lv.fan_end; ++k) {
        const FanOp &op = fan_ops[k];
        vals[op.out] = applyStage(stages[op.out], spec,
                                  inputSum(op.in, vals), ovf,
                                  /*monitored=*/false);
    }
    for (std::size_t k = lv.lut_begin; k < lv.lut_end; ++k) {
        const LutOp &op = lut_ops[k];
        double raw = ws.lut[k].empty()
                         ? 0.0
                         : lutEvalQuantized(ws.lut[k],
                                            inputSum(op.in, vals));
        vals[op.out] = applyStage(stages[op.out], spec, raw, ovf,
                                  /*monitored=*/false);
    }
}

void
EvalPlan::checkSinks(const la::Vector &vals, const AnalogSpec &spec,
                     std::vector<std::uint8_t> &latches) const
{
    for (const SinkOp &op : sink_ops) {
        if (std::fabs(inputSum(op.in, vals)) > spec.linear_range)
            latches[op.blk] = 1;
    }
}

void
EvalPlan::evalIdealPortsAos(double t, const la::Vector &y,
                            const std::vector<OutputStage> &stages,
                            const AnalogSpec &spec,
                            PlanWorkspace &ws) const
{
    // Integrator outputs come straight from the state vector.
    for (std::size_t k = 0; k < integ_flats.size(); ++k)
        ws.vals[integ_flats[k]] = y[k];
    evalSources(t, ws.vals, stages, spec, ws);
    for (const LevelSlice &lv : levels)
        evalCombLevel(lv, t, ws.vals, stages, spec, ws);
}

void
EvalPlan::rhsIdealAos(double t, const la::Vector &y, la::Vector &dydt,
                      const std::vector<OutputStage> &stages,
                      const AnalogSpec &spec,
                      std::vector<std::uint8_t> &latches,
                      PlanWorkspace &ws) const
{
    evalIdealPortsAos(t, y, stages, spec, ws);
    for (std::size_t k = 0; k < integ_ops.size(); ++k)
        dydt[k] = integDeriv(integ_ops[k], y[k], ws.vals, stages,
                             spec, latches);
    checkSinks(ws.vals, spec, latches);
}

void
EvalPlan::rhsBandwidthAos(double t, const la::Vector &y,
                          la::Vector &dydt,
                          const std::vector<OutputStage> &stages,
                          const AnalogSpec &spec,
                          std::vector<std::uint8_t> &latches,
                          PlanWorkspace &ws) const
{
    double lag = spec.lagRate();
    for (const IntegOp &op : integ_ops)
        dydt[op.out] = integDeriv(op, y[op.out], y, stages, spec,
                                  latches);
    bool ovf = false;
    for (std::size_t i = 0; i < dac_ops.size(); ++i) {
        std::size_t f = dac_ops[i].out;
        double target = applyStage(stages[f], spec, ws.dac[i], ovf,
                                   /*monitored=*/false);
        dydt[f] = lag * (target - y[f]);
    }
    for (std::size_t i = 0; i < extin_ops.size(); ++i) {
        std::size_t f = extin_ops[i].out;
        double raw = ws.ext[i] ? (*ws.ext[i])(t) : 0.0;
        double target = applyStage(stages[f], spec, raw, ovf,
                                   /*monitored=*/false);
        dydt[f] = lag * (target - y[f]);
    }
    // In bandwidth mode every port is a state, so combinational ops
    // read their inputs from y directly and level order is moot; the
    // whole op arrays are swept flat.
    for (std::size_t k = 0; k < gain_ops.size(); ++k) {
        const GainOp &op = gain_ops[k];
        double target = applyStage(stages[op.out], spec,
                                   ws.gain[k] * inputSum(op.in, y),
                                   ovf, /*monitored=*/false);
        dydt[op.out] = lag * (target - y[op.out]);
    }
    for (const MulVarOp &op : var_ops) {
        double target = applyStage(stages[op.out], spec,
                                   inputSum(op.in0, y) *
                                       inputSum(op.in1, y),
                                   ovf, /*monitored=*/false);
        dydt[op.out] = lag * (target - y[op.out]);
    }
    for (const FanOp &op : fan_ops) {
        double target = applyStage(stages[op.out], spec,
                                   inputSum(op.in, y), ovf,
                                   /*monitored=*/false);
        dydt[op.out] = lag * (target - y[op.out]);
    }
    for (std::size_t k = 0; k < lut_ops.size(); ++k) {
        const LutOp &op = lut_ops[k];
        double raw = ws.lut[k].empty()
                         ? 0.0
                         : lutEvalQuantized(ws.lut[k],
                                            inputSum(op.in, y));
        double target = applyStage(stages[op.out], spec, raw, ovf,
                                   /*monitored=*/false);
        dydt[op.out] = lag * (target - y[op.out]);
    }
    checkSinks(y, spec, latches);
}

// ---- SoA stage-table sweeps ------------------------------------
// Ident = every output stage is identity (variation disabled, no
// trims): the stage transfer reduces to the range clamp and the
// whole lane math disappears. The non-Ident branch reads the error
// lanes sequentially (SoA position order) via applyLanes.

template <bool Ident>
void
EvalPlan::evalSoaSources(double t, la::Vector &vals,
                         const AnalogSpec &spec,
                         const PlanWorkspace &ws) const
{
    const double bc = spec.branch_clip_range;
    bool ovf = false; // branch stages are unmonitored; never set
    for (std::size_t i = 0; i < dac_ops.size(); ++i) {
        double raw = ws.dac[i];
        if constexpr (Ident)
            vals[dac_ops[i].out] = std::clamp(raw, -bc, bc);
        else
            vals[dac_ops[i].out] = applyLanes(ws, sb_dac + i, spec,
                                              raw, ovf, false);
    }
    for (std::size_t i = 0; i < extin_ops.size(); ++i) {
        double raw = ws.ext[i] ? (*ws.ext[i])(t) : 0.0;
        if constexpr (Ident)
            vals[extin_ops[i].out] = std::clamp(raw, -bc, bc);
        else
            vals[extin_ops[i].out] = applyLanes(ws, sb_ext + i, spec,
                                                raw, ovf, false);
    }
}

template <bool Ident>
void
EvalPlan::evalSoaLevel(const SoaSlice &s, la::Vector &vals,
                       const AnalogSpec &spec,
                       const PlanWorkspace &ws) const
{
    const double bc = spec.branch_clip_range;
    double *v = vals.data();
    bool ovf = false;

    {
        const PlanIdx *out = gu_out.data();
        const PlanIdx *src = gu_src.data();
        const double *g = ws.gain_u.data();
        // Outputs written by a level are never read by it, so the
        // gather and scatter never alias within the loop.
#pragma omp simd
        for (PlanIdx j = s.gu0; j < s.gu1; ++j) {
            double r = g[j] * v[src[j]];
            if constexpr (Ident)
                v[out[j]] = std::clamp(r, -bc, bc);
            else
                v[out[j]] =
                    applyLanes(ws, sb_gu + j, spec, r, ovf, false);
        }
    }
    for (PlanIdx j = s.gm0; j < s.gm1; ++j) {
        double r = ws.gain_m[j] * inputSum32(gm_row[j], vals);
        if constexpr (Ident)
            v[gm_out[j]] = std::clamp(r, -bc, bc);
        else
            v[gm_out[j]] =
                applyLanes(ws, sb_gm + j, spec, r, ovf, false);
    }

    {
        const PlanIdx *out = vu_out.data();
        const PlanIdx *s0 = vu_src0.data();
        const PlanIdx *s1 = vu_src1.data();
#pragma omp simd
        for (PlanIdx j = s.vu0; j < s.vu1; ++j) {
            double r = v[s0[j]] * v[s1[j]];
            if constexpr (Ident)
                v[out[j]] = std::clamp(r, -bc, bc);
            else
                v[out[j]] =
                    applyLanes(ws, sb_vu + j, spec, r, ovf, false);
        }
    }
    for (PlanIdx j = s.vm0; j < s.vm1; ++j) {
        double r = inputSum32(vm_row0[j], vals) *
                   inputSum32(vm_row1[j], vals);
        if constexpr (Ident)
            v[vm_out[j]] = std::clamp(r, -bc, bc);
        else
            v[vm_out[j]] =
                applyLanes(ws, sb_vm + j, spec, r, ovf, false);
    }

    {
        const PlanIdx *out = fu_out.data();
        const PlanIdx *src = fu_src.data();
#pragma omp simd
        for (PlanIdx j = s.fu0; j < s.fu1; ++j) {
            double r = v[src[j]];
            if constexpr (Ident)
                v[out[j]] = std::clamp(r, -bc, bc);
            else
                v[out[j]] =
                    applyLanes(ws, sb_fu + j, spec, r, ovf, false);
        }
    }
    for (PlanIdx j = s.fm0; j < s.fm1; ++j) {
        double r = inputSum32(fm_row[j], vals);
        if constexpr (Ident)
            v[fm_out[j]] = std::clamp(r, -bc, bc);
        else
            v[fm_out[j]] =
                applyLanes(ws, sb_fm + j, spec, r, ovf, false);
    }

    for (PlanIdx j = s.lu0; j < s.lu1; ++j) {
        const auto &table = ws.lut[lu_op[j]];
        double r = table.empty()
                       ? 0.0
                       : lutEvalQuantized(table, v[lu_src[j]]);
        if constexpr (Ident)
            v[lu_out[j]] = std::clamp(r, -bc, bc);
        else
            v[lu_out[j]] =
                applyLanes(ws, sb_lu + j, spec, r, ovf, false);
    }
    for (PlanIdx j = s.lm0; j < s.lm1; ++j) {
        const auto &table = ws.lut[lm_op[j]];
        double r = table.empty()
                       ? 0.0
                       : lutEvalQuantized(table,
                                          inputSum32(lm_row[j], vals));
        if constexpr (Ident)
            v[lm_out[j]] = std::clamp(r, -bc, bc);
        else
            v[lm_out[j]] =
                applyLanes(ws, sb_lm + j, spec, r, ovf, false);
    }
}

template <bool Ident>
void
EvalPlan::rhsIdealSoa(double t, const la::Vector &y, la::Vector &dydt,
                      const AnalogSpec &spec,
                      std::vector<std::uint8_t> &latches,
                      PlanWorkspace &ws) const
{
    for (std::size_t k = 0; k < integ_flats.size(); ++k)
        ws.vals[integ_flats[k]] = y[k];
    evalSoaSources<Ident>(t, ws.vals, spec, ws);
    for (const SoaSlice &s : soa_levels)
        evalSoaLevel<Ident>(s, ws.vals, spec, ws);

    const double rate = spec.integratorRate();
    const double clip = spec.clip_range;
    const double lin = spec.linear_range;
    for (std::size_t k = 0; k < integ_ops.size(); ++k) {
        const IntegOp &op = integ_ops[k];
        bool ovf = false;
        double drive;
        if constexpr (Ident) {
            drive = inputSum32(op.in, ws.vals);
            if (std::fabs(drive) > lin)
                ovf = true;
            drive = std::clamp(drive, -clip, clip);
        } else {
            drive = applyLanes(ws, sb_integ + k, spec,
                               inputSum32(op.in, ws.vals), ovf, true);
        }
        if (ovf)
            latches[op.blk] = 1;
        double state = y[k];
        if (std::fabs(state) > lin)
            latches[op.blk] = 1;
        double d = rate * drive;
        // Saturated integrators stop accumulating outward.
        if ((state >= clip && d > 0.0) || (state <= -clip && d < 0.0))
            d = 0.0;
        dydt[k] = d;
    }
    for (const SinkOp &op : sink_ops) {
        if (std::fabs(inputSum32(op.in, ws.vals)) > lin)
            latches[op.blk] = 1;
    }
}

template <bool Ident>
void
EvalPlan::rhsBandwidthSoa(double t, const la::Vector &y,
                          la::Vector &dydt, const AnalogSpec &spec,
                          std::vector<std::uint8_t> &latches,
                          PlanWorkspace &ws) const
{
    const double lag = spec.lagRate();
    const double bc = spec.branch_clip_range;
    const double rate = spec.integratorRate();
    const double clip = spec.clip_range;
    const double lin = spec.linear_range;
    const double *yy = y.data();
    double *dd = dydt.data();

    for (std::size_t k = 0; k < integ_ops.size(); ++k) {
        const IntegOp &op = integ_ops[k];
        bool ovf = false;
        double drive;
        if constexpr (Ident) {
            drive = inputSum32(op.in, y);
            if (std::fabs(drive) > lin)
                ovf = true;
            drive = std::clamp(drive, -clip, clip);
        } else {
            drive = applyLanes(ws, sb_integ + k, spec,
                               inputSum32(op.in, y), ovf, true);
        }
        if (ovf)
            latches[op.blk] = 1;
        double state = yy[op.out];
        if (std::fabs(state) > lin)
            latches[op.blk] = 1;
        double d = rate * drive;
        if ((state >= clip && d > 0.0) || (state <= -clip && d < 0.0))
            d = 0.0;
        dd[op.out] = d;
    }

    bool ovf = false;
    for (std::size_t i = 0; i < dac_ops.size(); ++i) {
        std::size_t f = dac_ops[i].out;
        double raw = ws.dac[i];
        double target =
            Ident ? std::clamp(raw, -bc, bc)
                  : applyLanes(ws, sb_dac + i, spec, raw, ovf, false);
        dd[f] = lag * (target - yy[f]);
    }
    for (std::size_t i = 0; i < extin_ops.size(); ++i) {
        std::size_t f = extin_ops[i].out;
        double raw = ws.ext[i] ? (*ws.ext[i])(t) : 0.0;
        double target =
            Ident ? std::clamp(raw, -bc, bc)
                  : applyLanes(ws, sb_ext + i, spec, raw, ovf, false);
        dd[f] = lag * (target - yy[f]);
    }

    // Every port is a state: the comb lanes read y directly and level
    // order is moot, so each family sweeps its whole lane flat.
    {
        const PlanIdx *out = gu_out.data();
        const PlanIdx *src = gu_src.data();
        const double *g = ws.gain_u.data();
#pragma omp simd
        for (std::size_t j = 0; j < gu_out.size(); ++j) {
            double r = g[j] * yy[src[j]];
            double target =
                Ident ? std::clamp(r, -bc, bc)
                      : applyLanes(ws, sb_gu + j, spec, r, ovf,
                                   false);
            dd[out[j]] = lag * (target - yy[out[j]]);
        }
    }
    for (std::size_t j = 0; j < gm_out.size(); ++j) {
        double r = ws.gain_m[j] * inputSum32(gm_row[j], y);
        double target =
            Ident ? std::clamp(r, -bc, bc)
                  : applyLanes(ws, sb_gm + j, spec, r, ovf, false);
        dd[gm_out[j]] = lag * (target - yy[gm_out[j]]);
    }
    {
        const PlanIdx *out = vu_out.data();
        const PlanIdx *s0 = vu_src0.data();
        const PlanIdx *s1 = vu_src1.data();
#pragma omp simd
        for (std::size_t j = 0; j < vu_out.size(); ++j) {
            double r = yy[s0[j]] * yy[s1[j]];
            double target =
                Ident ? std::clamp(r, -bc, bc)
                      : applyLanes(ws, sb_vu + j, spec, r, ovf,
                                   false);
            dd[out[j]] = lag * (target - yy[out[j]]);
        }
    }
    for (std::size_t j = 0; j < vm_out.size(); ++j) {
        double r =
            inputSum32(vm_row0[j], y) * inputSum32(vm_row1[j], y);
        double target =
            Ident ? std::clamp(r, -bc, bc)
                  : applyLanes(ws, sb_vm + j, spec, r, ovf, false);
        dd[vm_out[j]] = lag * (target - yy[vm_out[j]]);
    }
    {
        const PlanIdx *out = fu_out.data();
        const PlanIdx *src = fu_src.data();
#pragma omp simd
        for (std::size_t j = 0; j < fu_out.size(); ++j) {
            double r = yy[src[j]];
            double target =
                Ident ? std::clamp(r, -bc, bc)
                      : applyLanes(ws, sb_fu + j, spec, r, ovf,
                                   false);
            dd[out[j]] = lag * (target - yy[out[j]]);
        }
    }
    for (std::size_t j = 0; j < fm_out.size(); ++j) {
        double r = inputSum32(fm_row[j], y);
        double target =
            Ident ? std::clamp(r, -bc, bc)
                  : applyLanes(ws, sb_fm + j, spec, r, ovf, false);
        dd[fm_out[j]] = lag * (target - yy[fm_out[j]]);
    }
    for (std::size_t j = 0; j < lu_out.size(); ++j) {
        const auto &table = ws.lut[lu_op[j]];
        double r = table.empty()
                       ? 0.0
                       : lutEvalQuantized(table, yy[lu_src[j]]);
        double target =
            Ident ? std::clamp(r, -bc, bc)
                  : applyLanes(ws, sb_lu + j, spec, r, ovf, false);
        dd[lu_out[j]] = lag * (target - yy[lu_out[j]]);
    }
    for (std::size_t j = 0; j < lm_out.size(); ++j) {
        const auto &table = ws.lut[lm_op[j]];
        double r = table.empty()
                       ? 0.0
                       : lutEvalQuantized(table,
                                          inputSum32(lm_row[j], y));
        double target =
            Ident ? std::clamp(r, -bc, bc)
                  : applyLanes(ws, sb_lm + j, spec, r, ovf, false);
        dd[lm_out[j]] = lag * (target - yy[lm_out[j]]);
    }

    for (const SinkOp &op : sink_ops) {
        if (std::fabs(inputSum32(op.in, y)) > lin)
            latches[op.blk] = 1;
    }
}

void
EvalPlan::evalIdealPorts(double t, const la::Vector &y,
                         const std::vector<OutputStage> &stages,
                         const AnalogSpec &spec,
                         PlanWorkspace &ws) const
{
    (void)stages; // stage lanes carry the snapshot (refreshStages)
    panicIf(!ws.stages_valid,
            "EvalPlan: refreshStages must run before SoA evaluation");
    for (std::size_t k = 0; k < integ_flats.size(); ++k)
        ws.vals[integ_flats[k]] = y[k];
    if (ws.stages_identity) {
        evalSoaSources<true>(t, ws.vals, spec, ws);
        for (const SoaSlice &s : soa_levels)
            evalSoaLevel<true>(s, ws.vals, spec, ws);
    } else {
        evalSoaSources<false>(t, ws.vals, spec, ws);
        for (const SoaSlice &s : soa_levels)
            evalSoaLevel<false>(s, ws.vals, spec, ws);
    }
}

void
EvalPlan::rhsIdeal(double t, const la::Vector &y, la::Vector &dydt,
                   const std::vector<OutputStage> &stages,
                   const AnalogSpec &spec,
                   std::vector<std::uint8_t> &latches,
                   PlanWorkspace &ws) const
{
    (void)stages;
    panicIf(!ws.stages_valid,
            "EvalPlan: refreshStages must run before SoA evaluation");
    if (ws.stages_identity)
        rhsIdealSoa<true>(t, y, dydt, spec, latches, ws);
    else
        rhsIdealSoa<false>(t, y, dydt, spec, latches, ws);
}

void
EvalPlan::rhsBandwidth(double t, const la::Vector &y,
                       la::Vector &dydt,
                       const std::vector<OutputStage> &stages,
                       const AnalogSpec &spec,
                       std::vector<std::uint8_t> &latches,
                       PlanWorkspace &ws) const
{
    (void)stages;
    panicIf(!ws.stages_valid,
            "EvalPlan: refreshStages must run before SoA evaluation");
    if (ws.stages_identity)
        rhsBandwidthSoa<true>(t, y, dydt, spec, latches, ws);
    else
        rhsBandwidthSoa<false>(t, y, dydt, spec, latches, ws);
}

} // namespace aa::circuit
