#include "aa/circuit/plan.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "aa/common/logging.hh"

namespace aa::circuit {

namespace {

/** Piecewise-linear LUT evaluation over a pre-quantized table. */
double
lutEvalQuantized(const std::vector<double> &table, double x)
{
    double clamped = std::clamp(x, -1.0, 1.0);
    double pos = (clamped + 1.0) / 2.0 *
                 static_cast<double>(table.size() - 1);
    auto i0 = static_cast<std::size_t>(pos);
    if (i0 >= table.size() - 1)
        i0 = table.size() - 2;
    double w = pos - static_cast<double>(i0);
    return (1.0 - w) * table[i0] + w * table[i0 + 1];
}

bool
isComb(BlockKind kind)
{
    switch (kind) {
      case BlockKind::MulGain:
      case BlockKind::MulVar:
      case BlockKind::Fanout:
      case BlockKind::Lut:
        return true;
      default:
        return false;
    }
}

} // namespace

EvalPlan::EvalPlan(const Netlist &net, const AnalogSpec &spec)
{
    num_blocks = net.numBlocks();

    // ---- Port layout (block-major, legacy-identical) -------------
    out_base.assign(num_blocks, 0);
    in_base.assign(num_blocks, 0);
    std::size_t num_in_ports = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
        BlockId id{b};
        out_base[b] = out_ports.size();
        in_base[b] = num_in_ports;
        num_in_ports += net.inputCount(id);
        std::size_t nout = net.outputCount(id);
        for (std::size_t o = 0; o < nout; ++o) {
            out_ports.push_back(PortRef{id, o});
            if (net.kind(id) == BlockKind::Integrator)
                integ_flats.push_back(out_ports.size() - 1);
        }
    }
    panicIf(out_ports.size() >
                    std::numeric_limits<PlanIdx>::max() ||
                num_in_ports > std::numeric_limits<PlanIdx>::max(),
            "EvalPlan: netlist exceeds 2^32 ports");

    // ---- CSR fan-in from the connection list ---------------------
    // Two passes: count, then fill with per-row cursors so the source
    // order within one input node matches the connection order (and
    // therefore the legacy nested-vector summation order exactly).
    const auto &conns = net.connections();
    in_offsets.assign(num_in_ports + 1, 0);
    for (const auto &c : conns)
        ++in_offsets[flatInput(c.to) + 1];
    for (std::size_t i = 1; i <= num_in_ports; ++i)
        in_offsets[i] += in_offsets[i - 1];
    in_srcs.resize(conns.size());
    std::vector<std::size_t> cursor(in_offsets.begin(),
                                    in_offsets.end() - 1);
    for (const auto &c : conns)
        in_srcs[cursor[flatInput(c.to)]++] = flatOutput(c.from);

    // ---- One-shot block adjacency + Kahn with levels -------------
    // The from-block -> to-blocks index kills the O(blocks x
    // connections) rescan the legacy topo sort performed per ready
    // block.
    std::vector<std::size_t> adj_off(num_blocks + 1, 0), adj_dst;
    for (const auto &c : conns)
        ++adj_off[c.from.block.v + 1];
    for (std::size_t b = 1; b <= num_blocks; ++b)
        adj_off[b] += adj_off[b - 1];
    adj_dst.resize(conns.size());
    {
        std::vector<std::size_t> acur(adj_off.begin(),
                                      adj_off.end() - 1);
        for (const auto &c : conns)
            adj_dst[acur[c.from.block.v]++] = c.to.block.v;
    }

    std::vector<std::size_t> indeg(num_blocks, 0);
    for (const auto &c : conns) {
        if (isComb(net.kind(c.from.block)) &&
            isComb(net.kind(c.to.block)))
            ++indeg[c.to.block.v];
    }

    constexpr std::size_t kUnleveled =
        std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> level(num_blocks, kUnleveled);
    std::deque<std::size_t> ready;
    std::size_t comb_count = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
        if (!isComb(net.kind(BlockId{b})))
            continue;
        ++comb_count;
        if (indeg[b] == 0) {
            level[b] = 0;
            ready.push_back(b);
        }
    }
    std::size_t sorted = 0, max_level = 0;
    while (!ready.empty()) {
        std::size_t b = ready.front();
        ready.pop_front();
        ++sorted;
        max_level = std::max(max_level, level[b]);
        for (std::size_t e = adj_off[b]; e < adj_off[b + 1]; ++e) {
            std::size_t dst = adj_dst[e];
            if (!isComb(net.kind(BlockId{dst})))
                continue;
            level[dst] = level[dst] == kUnleveled
                             ? level[b] + 1
                             : std::max(level[dst], level[b] + 1);
            if (--indeg[dst] == 0)
                ready.push_back(dst);
        }
    }
    has_comb_cycle = sorted != comb_count;
    fatalIf(has_comb_cycle && spec.mode == SimMode::Ideal,
            "EvalPlan: algebraic loop through combinational blocks; "
            "SimMode::Ideal cannot evaluate it, use "
            "SimMode::Bandwidth");

    // Bucket combinational blocks by level (block-id order inside a
    // level keeps emission deterministic); blocks left on a cycle
    // (Bandwidth mode only) land in one extra trailing level.
    std::size_t num_levels = comb_count == 0 ? 0 : max_level + 1;
    std::vector<std::vector<std::size_t>> buckets(num_levels +
                                                  (has_comb_cycle ? 1
                                                                  : 0));
    for (std::size_t b = 0; b < num_blocks; ++b) {
        if (!isComb(net.kind(BlockId{b})))
            continue;
        if (level[b] == kUnleveled)
            buckets[num_levels].push_back(b);
        else
            buckets[level[b]].push_back(b);
    }

    // ---- Emit typed op lists -------------------------------------
    auto u32 = [](std::size_t v) { return static_cast<PlanIdx>(v); };
    for (std::size_t b = 0; b < num_blocks; ++b) {
        BlockId id{b};
        switch (net.kind(id)) {
          case BlockKind::Integrator:
            integ_ops.push_back({u32(out_base[b]), u32(in_base[b]),
                                 u32(b)});
            break;
          case BlockKind::Dac:
            dac_ops.push_back({u32(out_base[b]), u32(b)});
            break;
          case BlockKind::ExtIn:
            extin_ops.push_back({u32(out_base[b]), u32(b)});
            break;
          case BlockKind::Adc:
          case BlockKind::ExtOut:
            sink_ops.push_back({u32(in_base[b]), u32(b)});
            break;
          default:
            break; // combinational: emitted level by level below
        }
    }
    for (const auto &bucket : buckets) {
        LevelSlice lv;
        lv.gain_begin = u32(gain_ops.size());
        lv.var_begin = u32(var_ops.size());
        lv.fan_begin = u32(fan_ops.size());
        lv.lut_begin = u32(lut_ops.size());
        for (std::size_t b : bucket) {
            BlockId id{b};
            switch (net.kind(id)) {
              case BlockKind::MulGain:
                gain_ops.push_back({u32(out_base[b]), u32(in_base[b]),
                                    u32(b)});
                break;
              case BlockKind::MulVar:
                var_ops.push_back({u32(out_base[b]), u32(in_base[b]),
                                   u32(in_base[b] + 1)});
                break;
              case BlockKind::Fanout:
                for (std::size_t o = 0; o < net.outputCount(id); ++o)
                    fan_ops.push_back({u32(out_base[b] + o),
                                       u32(in_base[b])});
                break;
              case BlockKind::Lut:
                lut_ops.push_back({u32(out_base[b]), u32(in_base[b]),
                                   u32(b)});
                break;
              default:
                panic("EvalPlan: non-combinational block in level");
            }
        }
        lv.gain_end = u32(gain_ops.size());
        lv.var_end = u32(var_ops.size());
        lv.fan_end = u32(fan_ops.size());
        lv.lut_end = u32(lut_ops.size());
        levels.push_back(lv);
    }
}

void
EvalPlan::initWorkspace(const Netlist &net, const AnalogSpec &spec,
                        PlanWorkspace &ws) const
{
    ws.vals.resize(out_ports.size());
    ws.gain.resize(gain_ops.size());
    ws.dac.resize(dac_ops.size());
    ws.lut.resize(lut_ops.size());
    ws.ext.resize(extin_ops.size());
    refreshParams(net, spec, ws);
}

void
EvalPlan::refreshParams(const Netlist &net, const AnalogSpec &spec,
                        PlanWorkspace &ws) const
{
    for (std::size_t i = 0; i < gain_ops.size(); ++i)
        ws.gain[i] = net.params(BlockId{gain_ops[i].blk}).gain;
    for (std::size_t i = 0; i < dac_ops.size(); ++i)
        ws.dac[i] = quantizeValue(
            net.params(BlockId{dac_ops[i].blk}).level, spec.dac_bits);
    for (std::size_t i = 0; i < lut_ops.size(); ++i) {
        const auto &table = net.params(BlockId{lut_ops[i].blk}).table;
        // Unconfigured LUTs sit unwired (validate() enforces it) and
        // contribute a raw 0 like the legacy walk.
        if (table.size() < 2) {
            ws.lut[i].clear();
            continue;
        }
        ws.lut[i].resize(table.size());
        for (std::size_t j = 0; j < table.size(); ++j)
            ws.lut[i][j] = quantizeValue(table[j], spec.lut_bits);
    }
    for (std::size_t i = 0; i < extin_ops.size(); ++i) {
        const auto &fn = net.params(BlockId{extin_ops[i].blk}).ext_in;
        ws.ext[i] = fn ? &fn : nullptr;
    }
}

double
EvalPlan::integDeriv(const IntegOp &op, double state,
                     const la::Vector &vals,
                     const std::vector<OutputStage> &stages,
                     const AnalogSpec &spec,
                     std::vector<std::uint8_t> &latches) const
{
    bool ovf = false;
    double drive = applyStage(stages[op.out], spec,
                              inputSum(op.in, vals), ovf);
    if (ovf)
        latches[op.blk] = 1;
    if (std::fabs(state) > spec.linear_range)
        latches[op.blk] = 1;
    double d = spec.integratorRate() * drive;
    // Saturated integrators stop accumulating outward.
    if ((state >= spec.clip_range && d > 0.0) ||
        (state <= -spec.clip_range && d < 0.0)) {
        d = 0.0;
    }
    return d;
}

void
EvalPlan::evalSources(double t, la::Vector &vals,
                      const std::vector<OutputStage> &stages,
                      const AnalogSpec &spec,
                      const PlanWorkspace &ws) const
{
    // Branch stages are unmonitored (only integrators and ADCs carry
    // comparators, Section III-B) — overflow flags are ignored here.
    bool ovf = false;
    for (std::size_t i = 0; i < dac_ops.size(); ++i)
        vals[dac_ops[i].out] = applyStage(stages[dac_ops[i].out],
                                          spec, ws.dac[i], ovf,
                                          /*monitored=*/false);
    for (std::size_t i = 0; i < extin_ops.size(); ++i) {
        double raw = ws.ext[i] ? (*ws.ext[i])(t) : 0.0;
        vals[extin_ops[i].out] = applyStage(stages[extin_ops[i].out],
                                            spec, raw, ovf,
                                            /*monitored=*/false);
    }
}

void
EvalPlan::evalCombLevel(const LevelSlice &lv, double,
                        la::Vector &vals,
                        const std::vector<OutputStage> &stages,
                        const AnalogSpec &spec,
                        const PlanWorkspace &ws) const
{
    bool ovf = false;
    for (std::size_t k = lv.gain_begin; k < lv.gain_end; ++k) {
        const GainOp &op = gain_ops[k];
        vals[op.out] = applyStage(stages[op.out], spec,
                                  ws.gain[k] * inputSum(op.in, vals),
                                  ovf, /*monitored=*/false);
    }
    for (std::size_t k = lv.var_begin; k < lv.var_end; ++k) {
        const MulVarOp &op = var_ops[k];
        vals[op.out] = applyStage(stages[op.out], spec,
                                  inputSum(op.in0, vals) *
                                      inputSum(op.in1, vals),
                                  ovf, /*monitored=*/false);
    }
    for (std::size_t k = lv.fan_begin; k < lv.fan_end; ++k) {
        const FanOp &op = fan_ops[k];
        vals[op.out] = applyStage(stages[op.out], spec,
                                  inputSum(op.in, vals), ovf,
                                  /*monitored=*/false);
    }
    for (std::size_t k = lv.lut_begin; k < lv.lut_end; ++k) {
        const LutOp &op = lut_ops[k];
        double raw = ws.lut[k].empty()
                         ? 0.0
                         : lutEvalQuantized(ws.lut[k],
                                            inputSum(op.in, vals));
        vals[op.out] = applyStage(stages[op.out], spec, raw, ovf,
                                  /*monitored=*/false);
    }
}

void
EvalPlan::checkSinks(const la::Vector &vals, const AnalogSpec &spec,
                     std::vector<std::uint8_t> &latches) const
{
    for (const SinkOp &op : sink_ops) {
        if (std::fabs(inputSum(op.in, vals)) > spec.linear_range)
            latches[op.blk] = 1;
    }
}

void
EvalPlan::evalIdealPorts(double t, const la::Vector &y,
                         const std::vector<OutputStage> &stages,
                         const AnalogSpec &spec,
                         PlanWorkspace &ws) const
{
    // Integrator outputs come straight from the state vector.
    for (std::size_t k = 0; k < integ_flats.size(); ++k)
        ws.vals[integ_flats[k]] = y[k];
    evalSources(t, ws.vals, stages, spec, ws);
    for (const LevelSlice &lv : levels)
        evalCombLevel(lv, t, ws.vals, stages, spec, ws);
}

void
EvalPlan::rhsIdeal(double t, const la::Vector &y, la::Vector &dydt,
                   const std::vector<OutputStage> &stages,
                   const AnalogSpec &spec,
                   std::vector<std::uint8_t> &latches,
                   PlanWorkspace &ws) const
{
    evalIdealPorts(t, y, stages, spec, ws);
    for (std::size_t k = 0; k < integ_ops.size(); ++k)
        dydt[k] = integDeriv(integ_ops[k], y[k], ws.vals, stages,
                             spec, latches);
    checkSinks(ws.vals, spec, latches);
}

void
EvalPlan::rhsBandwidth(double t, const la::Vector &y,
                       la::Vector &dydt,
                       const std::vector<OutputStage> &stages,
                       const AnalogSpec &spec,
                       std::vector<std::uint8_t> &latches,
                       PlanWorkspace &ws) const
{
    double lag = spec.lagRate();
    for (const IntegOp &op : integ_ops)
        dydt[op.out] = integDeriv(op, y[op.out], y, stages, spec,
                                  latches);
    bool ovf = false;
    for (std::size_t i = 0; i < dac_ops.size(); ++i) {
        std::size_t f = dac_ops[i].out;
        double target = applyStage(stages[f], spec, ws.dac[i], ovf,
                                   /*monitored=*/false);
        dydt[f] = lag * (target - y[f]);
    }
    for (std::size_t i = 0; i < extin_ops.size(); ++i) {
        std::size_t f = extin_ops[i].out;
        double raw = ws.ext[i] ? (*ws.ext[i])(t) : 0.0;
        double target = applyStage(stages[f], spec, raw, ovf,
                                   /*monitored=*/false);
        dydt[f] = lag * (target - y[f]);
    }
    // In bandwidth mode every port is a state, so combinational ops
    // read their inputs from y directly and level order is moot; the
    // whole op arrays are swept flat.
    for (std::size_t k = 0; k < gain_ops.size(); ++k) {
        const GainOp &op = gain_ops[k];
        double target = applyStage(stages[op.out], spec,
                                   ws.gain[k] * inputSum(op.in, y),
                                   ovf, /*monitored=*/false);
        dydt[op.out] = lag * (target - y[op.out]);
    }
    for (const MulVarOp &op : var_ops) {
        double target = applyStage(stages[op.out], spec,
                                   inputSum(op.in0, y) *
                                       inputSum(op.in1, y),
                                   ovf, /*monitored=*/false);
        dydt[op.out] = lag * (target - y[op.out]);
    }
    for (const FanOp &op : fan_ops) {
        double target = applyStage(stages[op.out], spec,
                                   inputSum(op.in, y), ovf,
                                   /*monitored=*/false);
        dydt[op.out] = lag * (target - y[op.out]);
    }
    for (std::size_t k = 0; k < lut_ops.size(); ++k) {
        const LutOp &op = lut_ops[k];
        double raw = ws.lut[k].empty()
                         ? 0.0
                         : lutEvalQuantized(ws.lut[k],
                                            inputSum(op.in, y));
        double target = applyStage(stages[op.out], spec, raw, ovf,
                                   /*monitored=*/false);
        dydt[op.out] = lag * (target - y[op.out]);
    }
    checkSinks(y, spec, latches);
}

} // namespace aa::circuit
