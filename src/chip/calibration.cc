#include "aa/chip/calibration.hh"

#include <cmath>

#include "aa/circuit/nonideal.hh"
#include "aa/common/logging.hh"

namespace aa::chip {

using circuit::BlockId;
using circuit::BlockKind;
using circuit::PortRef;

namespace {

/** One calibration context: the host's view of measurements. */
struct Calibrator {
    circuit::Netlist &net;
    circuit::Simulator &sim;
    Rng rng;
    CalibrationReport report;

    /**
     * Measure a unit's DC output through the shared ADC: true value
     * plus sampling noise, quantized to adc_bits. Averaged over a few
     * samples as the host would with analogAvg.
     */
    double
    measure(BlockId block, double in0, double in1, std::size_t port)
    {
        constexpr std::size_t samples = 4;
        double acc = 0.0;
        for (std::size_t s = 0; s < samples; ++s) {
            double v = sim.dcTransfer(block, in0, in1, port) +
                       rng.gaussian(0.0, sim.spec().adc_noise_sigma);
            acc += circuit::quantizeValue(v, sim.spec().adc_bits);
            ++report.measurements;
        }
        return acc / samples;
    }

    /**
     * Binary search the trim code whose measured response is closest
     * to `target`; the response is monotone increasing in the code.
     */
    int
    searchCode(const std::function<void(int)> &apply,
               const std::function<double()> &respond, double target)
    {
        int lo = circuit::trimCodeMin(sim.spec());
        int hi = circuit::trimCodeMax(sim.spec());
        while (hi - lo > 1) {
            int mid = lo + (hi - lo) / 2;
            apply(mid);
            if (respond() < target)
                lo = mid;
            else
                hi = mid;
        }
        // Pick the better of the two bracketing codes.
        apply(lo);
        double err_lo = std::fabs(respond() - target);
        apply(hi);
        double err_hi = std::fabs(respond() - target);
        int best = err_lo <= err_hi ? lo : hi;
        apply(best);
        return best;
    }

    /**
     * Trim one output port: zero the offset at a zero-input test
     * point, then fix the gain at a mid-scale test point.
     */
    void
    trimPort(BlockId block, std::size_t port, double zin0, double zin1,
             double gin0, double gin1, double gain_target)
    {
        PortRef out = net.out(block, port);
        TrimRecord rec;
        rec.port = out;

        int gain_code = 0; // neutral while trimming offset
        auto apply_offset = [&](int code) {
            sim.setTrimCodes(out, code, gain_code);
        };
        rec.offset_code = searchCode(
            apply_offset,
            [&] { return measure(block, zin0, zin1, port); }, 0.0);
        rec.offset_residual =
            std::fabs(measure(block, zin0, zin1, port));

        auto apply_gain = [&](int code) {
            gain_code = code;
            sim.setTrimCodes(out, rec.offset_code, code);
        };
        rec.gain_code = searchCode(
            apply_gain,
            [&] { return measure(block, gin0, gin1, port); },
            gain_target);
        rec.gain_residual =
            std::fabs(measure(block, gin0, gin1, port) - gain_target);

        report.trims.push_back(rec);
    }
};

} // namespace

CalibrationReport
calibrate(circuit::Netlist &net, circuit::Simulator &sim,
          std::uint64_t seed)
{
    Calibrator cal{net, sim, Rng(seed), {}};

    for (std::size_t b = 0; b < net.numBlocks(); ++b) {
        BlockId id{b};
        switch (net.kind(id)) {
          case BlockKind::Integrator:
            // Input-stage drift: zero drift at zero input, unity
            // transfer at mid scale.
            cal.trimPort(id, 0, 0.0, 0.0, 0.5, 0.0, 0.5);
            break;
          case BlockKind::MulGain: {
            // Calibrate at unity gain; the configured gain multiplies
            // the trimmed stage later.
            double saved = net.params(id).gain;
            net.params(id).gain = 1.0;
            cal.trimPort(id, 0, 0.0, 0.0, 0.5, 0.0, 0.5);
            net.params(id).gain = saved;
            break;
          }
          case BlockKind::MulVar:
            // Zero either input to test offset; quarter-scale product
            // to test gain.
            cal.trimPort(id, 0, 0.0, 0.0, 0.5, 0.5, 0.25);
            break;
          case BlockKind::Fanout:
            for (std::size_t o = 0; o < net.outputCount(id); ++o)
                cal.trimPort(id, o, 0.0, 0.0, 0.5, 0.0, 0.5);
            break;
          case BlockKind::Dac: {
            // Drive the level register directly as the test input.
            double saved = net.params(id).level;
            PortRef out = net.out(id, 0);
            TrimRecord rec;
            rec.port = out;
            int gain_code = 0;
            net.params(id).level = 0.0;
            rec.offset_code = cal.searchCode(
                [&](int code) {
                    sim.setTrimCodes(out, code, gain_code);
                },
                [&] { return cal.measure(id, 0.0, 0.0, 0); }, 0.0);
            net.params(id).level = 0.5;
            rec.gain_code = cal.searchCode(
                [&](int code) {
                    gain_code = code;
                    sim.setTrimCodes(out, rec.offset_code, code);
                },
                [&] { return cal.measure(id, 0.0, 0.0, 0); }, 0.5);
            net.params(id).level = saved;
            cal.report.trims.push_back(rec);
            break;
          }
          case BlockKind::Lut:
          case BlockKind::Adc:
          case BlockKind::ExtIn:
          case BlockKind::ExtOut:
            // LUT contents are digital (no analog trim); ADC and the
            // pads have no output stage to trim.
            break;
        }
    }
    return cal.report;
}

} // namespace aa::chip
