#include "aa/chip/chip.hh"

#include <cmath>
#include <limits>

#include <algorithm>

#include "aa/chip/calibration.hh"
#include "aa/circuit/nonideal.hh"
#include "aa/common/logging.hh"
#include "aa/fault/fault.hh"

namespace aa::chip {

using circuit::BlockKind;
using circuit::BlockParams;

std::size_t
ChipGeometry::integrators() const
{
    return macroblocks * integrators_per_mb;
}

std::size_t
ChipGeometry::multipliers() const
{
    return macroblocks * multipliers_per_mb;
}

std::size_t
ChipGeometry::fanouts() const
{
    return macroblocks * fanouts_per_mb;
}

std::size_t
ChipGeometry::extIns() const
{
    return macroblocks * ext_in_per_mb;
}

std::size_t
ChipGeometry::extOuts() const
{
    return macroblocks * ext_out_per_mb;
}

std::size_t
ChipGeometry::adcs() const
{
    return (macroblocks + mb_per_shared - 1) / mb_per_shared;
}

std::size_t
ChipGeometry::dacs() const
{
    return adcs();
}

std::size_t
ChipGeometry::luts() const
{
    return adcs();
}

namespace {

circuit::Netlist
makeNetlist(const ChipConfig &cfg)
{
    circuit::Netlist net;
    const ChipGeometry &g = cfg.geometry;
    fatalIf(g.macroblocks == 0, "Chip: need at least one macroblock");

    for (std::size_t i = 0; i < g.integrators(); ++i)
        net.add(BlockKind::Integrator);
    for (std::size_t i = 0; i < g.multipliers(); ++i)
        net.add(BlockKind::MulGain);
    for (std::size_t i = 0; i < g.fanouts(); ++i) {
        BlockParams p;
        p.copies = g.fanout_copies;
        net.add(BlockKind::Fanout, p);
    }
    for (std::size_t i = 0; i < g.adcs(); ++i)
        net.add(BlockKind::Adc);
    for (std::size_t i = 0; i < g.dacs(); ++i)
        net.add(BlockKind::Dac);
    for (std::size_t i = 0; i < g.luts(); ++i)
        net.add(BlockKind::Lut);
    for (std::size_t i = 0; i < g.extIns(); ++i)
        net.add(BlockKind::ExtIn);
    for (std::size_t i = 0; i < g.extOuts(); ++i)
        net.add(BlockKind::ExtOut);
    return net;
}

} // namespace

Chip::Chip(const ChipConfig &config)
    : cfg(config), net(makeNetlist(config)),
      sim(net, config.spec, config.die_seed)
{
    integ = net.blocksOfKind(BlockKind::Integrator);
    muls = net.blocksOfKind(BlockKind::MulGain);
    fans = net.blocksOfKind(BlockKind::Fanout);
    adc = net.blocksOfKind(BlockKind::Adc);
    dac = net.blocksOfKind(BlockKind::Dac);
    lut = net.blocksOfKind(BlockKind::Lut);
    ext_in = net.blocksOfKind(BlockKind::ExtIn);
    ext_out = net.blocksOfKind(BlockKind::ExtOut);
}

void
Chip::checkKind(BlockId id, BlockKind kind, const char *what) const
{
    fatalIf(!id.valid() || id.v >= net.numBlocks() ||
                net.kind(id) != kind,
            "Chip: block #", id.v, " is not a ", what);
}

void
Chip::init()
{
    CalibrationReport report =
        calibrate(net, sim, cfg.die_seed ^ 0xCA11B8A7Eull);
    inform("chip init: calibrated ", report.trims.size(),
           " output stages with ", report.measurements,
           " ADC measurements");
    calibrated_ = true;
    if (injector_)
        injector_->onInit(); // fresh trims repair a calibration loss
}

void
Chip::setConn(PortRef from, PortRef to)
{
    net.connect(from, to);
    committed = false;
}

void
Chip::clearConnections()
{
    // Dropping every connection is how a new problem mapping starts;
    // the blocks themselves (and their calibration) stay.
    for (std::size_t b = net.numBlocks(); b-- > 0;)
        net.disconnectAll(BlockId{b});
    committed = false;
}

void
Chip::setIntInitial(BlockId integrator, double value)
{
    checkKind(integrator, BlockKind::Integrator, "integrator");
    fatalIf(std::fabs(value) > cfg.spec.linear_range,
            "setIntInitial: |", value, "| exceeds full scale");
    // Corruption happens below the host's validity check — a flipped
    // register bit saturates at the hardware range, it never faults.
    if (injector_)
        value = std::clamp(injector_->onValueWrite(value),
                           -cfg.spec.linear_range,
                           cfg.spec.linear_range);
    net.params(integrator).ic = value;
}

void
Chip::setMulGain(BlockId multiplier, double gain)
{
    checkKind(multiplier, BlockKind::MulGain, "multiplier");
    fatalIf(std::fabs(gain) > cfg.spec.max_gain,
            "setMulGain: |", gain, "| exceeds the multiplier range ",
            cfg.spec.max_gain, "; scale the problem (Section VI-D)");
    if (injector_)
        gain = std::clamp(injector_->onGainWrite(gain),
                          -cfg.spec.max_gain, cfg.spec.max_gain);
    net.params(multiplier).gain = gain;
}

void
Chip::setFunction(BlockId lut_id,
                  const std::function<double(double)> &fn)
{
    checkKind(lut_id, BlockKind::Lut, "lookup table");
    fatalIf(!fn, "setFunction: empty function");
    std::vector<double> table(cfg.spec.lut_depth);
    for (std::size_t i = 0; i < table.size(); ++i) {
        double x = -1.0 + 2.0 * static_cast<double>(i) /
                              static_cast<double>(table.size() - 1);
        table[i] = circuit::quantizeValue(fn(x), cfg.spec.lut_bits);
    }
    net.params(lut_id).table = std::move(table);
}

void
Chip::setFunctionCodes(BlockId lut_id,
                       const std::vector<std::uint8_t> &codes)
{
    checkKind(lut_id, BlockKind::Lut, "lookup table");
    fatalIf(codes.size() != cfg.spec.lut_depth,
            "setFunctionCodes: expected ", cfg.spec.lut_depth,
            " codes, got ", codes.size());
    std::vector<double> table(codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i)
        table[i] = circuit::codeToValue(codes[i], cfg.spec.lut_bits);
    net.params(lut_id).table = std::move(table);
}

void
Chip::setDacConstant(BlockId dac_id, double value)
{
    checkKind(dac_id, BlockKind::Dac, "DAC");
    fatalIf(std::fabs(value) > 1.0,
            "setDacConstant: |", value, "| exceeds the DAC range");
    if (injector_)
        value = std::clamp(injector_->onValueWrite(value), -1.0, 1.0);
    net.params(dac_id).level = value;
}

void
Chip::setTimeout(std::uint64_t ctrl_clock_cycles)
{
    timeout_cycles = ctrl_clock_cycles;
}

double
Chip::timeoutSeconds() const
{
    return static_cast<double>(timeout_cycles) / cfg.ctrl_clock_hz;
}

void
Chip::cfgCommit()
{
    net.validate();
    sim.refreshWiring();
    committed = true;
}

ExecResult
Chip::execStart()
{
    fatalIf(!committed, "execStart before cfgCommit");
    fatalIf(timeout_cycles == 0 && steady_tol <= 0.0,
            "execStart: no timeout set and steady detection off; "
            "computation would never stop");
    if (injector_)
        injector_->onExecWindow(); // may arm faults or throw death

    circuit::RunOptions opts;
    opts.timeout = timeout_cycles > 0
                       ? timeoutSeconds()
                       : std::numeric_limits<double>::infinity();
    opts.steady_rate_tol = steady_tol;

    if (capture_rate_hz > 0.0) {
        capture_result = CapturedWaveform{};
        capture_result.sample_rate_hz = capture_rate_hz;
        capture_result.effective_bits =
            cfg.spec.effectiveAdcBits(capture_rate_hz);
        double next_sample = 0.0;
        double period = 1.0 / capture_rate_hz;
        opts.observer = [this, next_sample, period](
                            double t, const la::Vector &y) mutable {
            while (t >= next_sample) {
                std::vector<double> row;
                row.reserve(capture_adcs.size());
                for (BlockId adc_id : capture_adcs) {
                    double v = sim.inputValueAt(
                        net.in(adc_id, 0), t, y);
                    row.push_back(circuit::quantizeValue(
                        v, capture_result.effective_bits));
                }
                capture_result.times.push_back(t);
                capture_result.samples.push_back(std::move(row));
                next_sample += period;
            }
            if (exec_observer)
                exec_observer(t, y);
        };
    } else {
        opts.observer = exec_observer;
    }

    circuit::RunResult r = sim.run(opts);
    ran = true;

    ExecResult res;
    res.analog_time = r.analog_time;
    res.timed_out = r.reason == ode::StopReason::ReachedTEnd;
    res.steady = r.reason == ode::StopReason::SteadyState;
    res.any_exception = r.any_exception;
    res.sim_steps = r.steps;
    return res;
}

void
Chip::execStop()
{
    // Integration already halted when execStart returned (timeout or
    // steady); the instruction exists so host code can express the
    // protocol of Table I.
}

void
Chip::enableWaveformCapture(double sample_rate_hz,
                            std::vector<BlockId> adc_blocks)
{
    fatalIf(sample_rate_hz <= 0.0,
            "enableWaveformCapture: rate must be positive");
    fatalIf(adc_blocks.empty(),
            "enableWaveformCapture: no ADCs selected");
    for (BlockId id : adc_blocks)
        checkKind(id, BlockKind::Adc, "ADC");
    capture_rate_hz = sample_rate_hz;
    capture_adcs = std::move(adc_blocks);
}

void
Chip::disableWaveformCapture()
{
    capture_rate_hz = 0.0;
    capture_adcs.clear();
}

void
Chip::setAnaInputEn(BlockId ext_in_block,
                    std::function<double(double)> stimulus)
{
    checkKind(ext_in_block, BlockKind::ExtIn, "analog input");
    net.params(ext_in_block).ext_in = std::move(stimulus);
}

void
Chip::writeParallel(std::uint8_t data)
{
    parallel_reg = data;
}

std::vector<std::uint8_t>
Chip::readSerial()
{
    fatalIf(!ran, "readSerial before any execStart");
    std::vector<std::uint8_t> bytes;
    std::size_t per_code = (cfg.spec.adc_bits + 7) / 8;
    for (BlockId a : adc) {
        std::int64_t code = sim.adcReadCode(a);
        for (std::size_t k = 0; k < per_code; ++k)
            bytes.push_back(
                static_cast<std::uint8_t>((code >> (8 * k)) & 0xff));
    }
    return bytes;
}

double
Chip::analogAvg(BlockId adc_block, std::size_t samples)
{
    checkKind(adc_block, BlockKind::Adc, "ADC");
    fatalIf(!ran, "analogAvg before any execStart");
    double v = sim.adcReadAveraged(adc_block, samples);
    if (injector_)
        v = injector_->onReadout(adcOrdinal(adc_block), adc.size(),
                                 v);
    return v;
}

double
Chip::readAdc(BlockId adc_block)
{
    checkKind(adc_block, BlockKind::Adc, "ADC");
    fatalIf(!ran, "readAdc before any execStart");
    double v = sim.adcRead(adc_block);
    if (injector_)
        v = injector_->onReadout(adcOrdinal(adc_block), adc.size(),
                                 v);
    return v;
}

std::size_t
Chip::adcOrdinal(BlockId adc_block) const
{
    for (std::size_t i = 0; i < adc.size(); ++i)
        if (adc[i].v == adc_block.v)
            return i;
    panic("adcOrdinal: block #", adc_block.v, " is not an ADC");
}

std::vector<std::uint8_t>
Chip::readExp() const
{
    return sim.exceptionLatches();
}

bool
Chip::anyException() const
{
    return sim.anyException();
}

void
Chip::clearExceptions()
{
    sim.clearExceptions();
}

} // namespace aa::chip
