/**
 * @file
 * Host-driven calibration (the `init` instruction, Section III-B).
 *
 * "When an analog unit is calibrated, its inputs and outputs are
 * connected to DACs and ADCs; then, the digital processor uses
 * binary search to find the settings that give the most ideal
 * behavior." We reproduce that loop: every measurement the search
 * sees is quantized by the chip's ADC (plus sampling noise), so the
 * achievable trim quality is genuinely resolution-limited.
 */

#ifndef AA_CHIP_CALIBRATION_HH
#define AA_CHIP_CALIBRATION_HH

#include <cstdint>
#include <vector>

#include "aa/circuit/netlist.hh"
#include "aa/circuit/simulator.hh"
#include "aa/common/rng.hh"

namespace aa::chip {

/** Trim decision for one output port. */
struct TrimRecord {
    circuit::PortRef port;
    int offset_code = 0;
    int gain_code = 0;
    /** |measured - ideal| after trimming, at the test points. */
    double offset_residual = 0.0;
    double gain_residual = 0.0;
};

/** Outcome of calibrating a whole chip. */
struct CalibrationReport {
    std::vector<TrimRecord> trims;
    std::size_t measurements = 0; ///< ADC reads the host performed
};

/**
 * Calibrate every trimmable output port of the netlist attached to
 * `sim`, writing the chosen codes into the simulator's trim
 * registers. `seed` drives the measurement-noise stream.
 */
CalibrationReport calibrate(circuit::Netlist &net,
                            circuit::Simulator &sim,
                            std::uint64_t seed);

} // namespace aa::chip

#endif // AA_CHIP_CALIBRATION_HH
