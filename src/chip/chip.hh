/**
 * @file
 * The analog accelerator chip.
 *
 * Models the prototype of Guo et al. the paper evaluates (Figures 2
 * and 3): four macroblocks — each with one integrator, two
 * multipliers, two current-copying fanout blocks, one analog input
 * and one analog output — where every two macroblocks share an 8-bit
 * ADC, an 8-bit DAC, and a 256-deep nonlinear-function SRAM LUT, all
 * interconnected by a full crossbar. Configuration lives in digital
 * registers ("only static configuration, akin to the program, and no
 * dynamic computational data").
 *
 * Larger design points (more macroblocks, higher bandwidth, 12-bit
 * ADCs) are the same class with a different ChipGeometry/AnalogSpec —
 * how the paper's projections are built.
 */

#ifndef AA_CHIP_CHIP_HH
#define AA_CHIP_CHIP_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "aa/circuit/netlist.hh"
#include "aa/circuit/simulator.hh"
#include "aa/circuit/spec.hh"

namespace aa::fault {
class FaultInjector;
}

namespace aa::chip {

using circuit::BlockId;
using circuit::PortRef;

/** Physical unit inventory of a chip design point. */
struct ChipGeometry {
    std::size_t macroblocks = 4; ///< the prototype has four
    std::size_t integrators_per_mb = 1;
    std::size_t multipliers_per_mb = 2;
    std::size_t fanouts_per_mb = 2;
    std::size_t fanout_copies = 2;
    std::size_t ext_in_per_mb = 1;
    std::size_t ext_out_per_mb = 1;
    /** ADC/DAC/LUT are shared between this many macroblocks. */
    std::size_t mb_per_shared = 2;

    std::size_t integrators() const;
    std::size_t multipliers() const;
    std::size_t fanouts() const;
    std::size_t extIns() const;
    std::size_t extOuts() const;
    std::size_t adcs() const;
    std::size_t dacs() const;
    std::size_t luts() const;
};

/** Full configuration of one chip instance. */
struct ChipConfig {
    ChipGeometry geometry;
    circuit::AnalogSpec spec;
    std::uint64_t die_seed = 1; ///< process-variation corner
    /** Digital control/SPI clock used to convert timeout cycles. */
    double ctrl_clock_hz = 1e6;
};

/** How an execStart run ended. */
struct ExecResult {
    double analog_time = 0.0; ///< seconds of analog computation
    bool timed_out = false;   ///< hit the setTimeout budget
    bool steady = false;      ///< converged before the timeout
    bool any_exception = false;
    std::size_t sim_steps = 0; ///< host-simulator effort (not chip)
};

/**
 * A chip instance: fixed hardware inventory, reconfigurable crossbar
 * and registers. The mutating methods below are the device-side
 * semantics of the Table I instructions; the host-facing typed API
 * (with SPI framing) is aa::isa::AcceleratorDriver.
 */
class Chip
{
  public:
    explicit Chip(const ChipConfig &config);

    // --- resource discovery -------------------------------------
    const std::vector<BlockId> &integrators() const { return integ; }
    const std::vector<BlockId> &multipliers() const { return muls; }
    const std::vector<BlockId> &fanouts() const { return fans; }
    const std::vector<BlockId> &adcs() const { return adc; }
    const std::vector<BlockId> &dacs() const { return dac; }
    const std::vector<BlockId> &luts() const { return lut; }
    const std::vector<BlockId> &extIns() const { return ext_in; }
    const std::vector<BlockId> &extOuts() const { return ext_out; }

    const ChipConfig &config() const { return cfg; }
    circuit::Netlist &netlist() { return net; }
    const circuit::Netlist &netlist() const { return net; }

    // --- Table I: control ----------------------------------------
    /** `init`: calibrate all function units (binary-searched trims). */
    void init();
    bool calibrated() const { return calibrated_; }

    /** `execStart` .. automatic stop at timeout (or steady state). */
    ExecResult execStart();
    /** `execStop`: freeze integrators (idempotent bookkeeping). */
    void execStop();

    // --- Table I: configuration ----------------------------------
    void setConn(PortRef from, PortRef to);
    void setIntInitial(BlockId integrator, double value);
    void setMulGain(BlockId multiplier, double gain);
    void setFunction(BlockId lut,
                     const std::function<double(double)> &fn);
    /** Load raw quantized LUT codes (what the SPI link carries). */
    void setFunctionCodes(BlockId lut,
                          const std::vector<std::uint8_t> &codes);
    void setDacConstant(BlockId dac, double value);
    void setTimeout(std::uint64_t ctrl_clock_cycles);
    double timeoutSeconds() const;
    /** Clear all crossbar connections (start of a new mapping). */
    void clearConnections();
    /** `cfgCommit`: validate and latch configuration for execution. */
    void cfgCommit();

    // --- Table I: data -------------------------------------------
    void setAnaInputEn(BlockId ext_in_block,
                       std::function<double(double)> stimulus);
    void writeParallel(std::uint8_t data);
    std::uint8_t parallelRegister() const { return parallel_reg; }
    /** `readSerial`: latest codes of all ADCs, in resource order. */
    std::vector<std::uint8_t> readSerial();
    /** `analogAvg`: averaged multi-sample read of one ADC. */
    double analogAvg(BlockId adc_block, std::size_t samples);
    /** Single-sample full-scale value of one ADC. */
    double readAdc(BlockId adc_block);

    // --- Table I: exceptions -------------------------------------
    /** `readExp`: sticky per-unit overflow latch vector. */
    std::vector<std::uint8_t> readExp() const;
    bool anyException() const;
    void clearExceptions();

    /** Host knob: let execStart stop early once integrators settle
     *  (rate threshold in full-scale units per second; <=0 off). */
    void setSteadyDetect(double rate_tol) { steady_tol = rate_tol; }

    // --- waveform sampling (Section II-B) -------------------------
    /**
     * Sample selected ADCs during the next execStart at the given
     * rate. Resolution follows the spec's rate/resolution trade-off:
     * fast sampling costs effective bits
     * (AnalogSpec::effectiveAdcBits), which is why the linear-algebra
     * flow reads only the steady state at full resolution.
     */
    void enableWaveformCapture(double sample_rate_hz,
                               std::vector<BlockId> adc_blocks);
    void disableWaveformCapture();

    /** A digitized waveform from the last captured run. */
    struct CapturedWaveform {
        double sample_rate_hz = 0.0;
        std::size_t effective_bits = 0;
        std::vector<double> times;
        /** Per sample, one decoded value per captured ADC. */
        std::vector<std::vector<double>> samples;
    };
    const CapturedWaveform &capturedWaveform() const
    {
        return capture_result;
    }

    /**
     * Attach a scope probe over the whole simulation state during
     * execStart — a modelling instrument (the physical equivalent is
     * an oscilloscope on the analog output pads). Pass nullptr to
     * detach.
     */
    void
    setExecObserver(
        std::function<void(double, const la::Vector &)> observer)
    {
        exec_observer = std::move(observer);
    }

    /** Direct access for tests and the calibration engine. */
    circuit::Simulator &simulator() { return sim; }
    const circuit::Simulator &simulator() const { return sim; }

    /**
     * Attach a fault injector (null detaches). The chip consults it
     * at the device-side hook points — exec windows, config value
     * writes, readouts — so injected nonidealities land exactly where
     * the physical failure would. Disabled (the default) costs one
     * pointer test per hook. The caller keeps the injector alive.
     */
    void setFaultInjector(fault::FaultInjector *injector)
    {
        injector_ = injector;
    }
    fault::FaultInjector *faultInjector() const { return injector_; }

  private:
    void buildNetlist();
    void checkKind(BlockId id, circuit::BlockKind kind,
                   const char *what) const;
    /** Index of an ADC block in resource order (fault-unit ids). */
    std::size_t adcOrdinal(BlockId adc_block) const;

    ChipConfig cfg;
    circuit::Netlist net;
    circuit::Simulator sim;

    std::vector<BlockId> integ, muls, fans, adc, dac, lut, ext_in,
        ext_out;

    std::uint64_t timeout_cycles = 0;
    double steady_tol = -1.0;
    std::function<void(double, const la::Vector &)> exec_observer;

    double capture_rate_hz = 0.0; ///< 0 = capture disabled
    std::vector<BlockId> capture_adcs;
    CapturedWaveform capture_result;
    bool committed = false;
    bool calibrated_ = false;
    bool ran = false;
    std::uint8_t parallel_reg = 0;
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace aa::chip

#endif // AA_CHIP_CHIP_HH
