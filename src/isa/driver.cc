#include "aa/isa/driver.hh"

#include <bit>

#include "aa/circuit/nonideal.hh"
#include "aa/common/logging.hh"
#include "aa/fault/fault.hh"

namespace aa::isa {

namespace {

void
putF32(std::vector<std::uint8_t> &out, float v)
{
    auto bits = std::bit_cast<std::uint32_t>(v);
    for (int k = 0; k < 4; ++k)
        out.push_back((bits >> (8 * k)) & 0xff);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int k = 0; k < 4; ++k)
        out.push_back((v >> (8 * k)) & 0xff);
}

Command
make(Opcode op)
{
    Command cmd;
    cmd.op = op;
    return cmd;
}

float
getF32(const std::vector<std::uint8_t> &in, std::size_t at)
{
    panicIf(at + 4 > in.size(), "getF32: short response");
    std::uint32_t bits = 0;
    for (int k = 0; k < 4; ++k)
        bits |= static_cast<std::uint32_t>(in[at + k]) << (8 * k);
    return std::bit_cast<float>(bits);
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t at)
{
    panicIf(at + 4 > in.size(), "getU32: short response");
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k)
        v |= static_cast<std::uint32_t>(in[at + k]) << (8 * k);
    return v;
}

bool
isConfigOpcode(Opcode op)
{
    switch (op) {
      case Opcode::SetConn:
      case Opcode::SetIntInitial:
      case Opcode::SetMulGain:
      case Opcode::SetFunction:
      case Opcode::SetDacConstant:
      case Opcode::SetTimeout:
      case Opcode::CfgCommit:
      case Opcode::ClearConfig:
        return true;
      default:
        return false;
    }
}

std::uint64_t
connKey(PortRef from, PortRef to)
{
    return (static_cast<std::uint64_t>(from.block.v) << 40) |
           (static_cast<std::uint64_t>(from.port) << 32) |
           (static_cast<std::uint64_t>(to.block.v) << 8) |
           static_cast<std::uint64_t>(to.port);
}

} // namespace

Response
DeviceEndpoint::execute(const Command &cmd)
{
    Response resp;
    switch (cmd.op) {
      case Opcode::Init:
        chip_.init();
        break;
      case Opcode::SetConn:
        chip_.setConn(PortRef{BlockId{cmd.block}, cmd.port},
                      PortRef{BlockId{cmd.block2}, cmd.port2});
        break;
      case Opcode::SetIntInitial:
        chip_.setIntInitial(BlockId{cmd.block}, cmd.value);
        break;
      case Opcode::SetMulGain:
        chip_.setMulGain(BlockId{cmd.block}, cmd.value);
        break;
      case Opcode::SetFunction:
        chip_.setFunctionCodes(BlockId{cmd.block}, cmd.table);
        break;
      case Opcode::SetDacConstant:
        chip_.setDacConstant(BlockId{cmd.block}, cmd.value);
        break;
      case Opcode::SetTimeout:
        chip_.setTimeout(cmd.count);
        break;
      case Opcode::CfgCommit:
        chip_.cfgCommit();
        break;
      case Opcode::ExecStart: {
        chip::ExecResult r = chip_.execStart();
        putF32(resp.data, static_cast<float>(r.analog_time));
        std::uint8_t flags = 0;
        if (r.timed_out)
            flags |= 1;
        if (r.steady)
            flags |= 2;
        if (r.any_exception)
            flags |= 4;
        resp.data.push_back(flags);
        putU32(resp.data,
               static_cast<std::uint32_t>(r.sim_steps & 0xffffffff));
        break;
      }
      case Opcode::ExecStop:
        chip_.execStop();
        break;
      case Opcode::SetAnaInputEn:
        // The stimulus itself is a physical analog signal the driver
        // attaches out of band; the command opens the channel.
        if (!cmd.byte)
            chip_.setAnaInputEn(BlockId{cmd.block}, nullptr);
        break;
      case Opcode::WriteParallel:
        chip_.writeParallel(cmd.byte);
        break;
      case Opcode::ReadSerial:
        resp.data = chip_.readSerial();
        break;
      case Opcode::AnalogAvg: {
        double avg = chip_.analogAvg(BlockId{cmd.block}, cmd.count);
        putF32(resp.data, static_cast<float>(avg));
        break;
      }
      case Opcode::ReadExp:
        resp.data = chip_.readExp();
        break;
      case Opcode::ClearConfig:
        chip_.clearConnections();
        break;
    }
    return resp;
}

AcceleratorDriver::AcceleratorDriver(chip::Chip &chip)
    : chip_(chip), endpoint(chip),
      link_(chip.config().ctrl_clock_hz)
{}

Response
AcceleratorDriver::transact(Command cmd)
{
    // A dead die answers nothing: fail the transaction before any
    // bytes go on the wire (or into the trace/byte accounting).
    if (fault::FaultInjector *inj = chip_.faultInjector())
        inj->checkAlive();
    trace_.push_back(cmd);
    auto frame = link_.hostToDevice(encodeCommand(cmd));
    if (isConfigOpcode(cmd.op)) {
        config_bytes_ += frame.size();
        ++shadow_stats_.shipped;
    }
    Command decoded = decodeCommand(frame);
    Response resp = endpoint.execute(decoded);
    auto back = link_.deviceToHost(encodeResponse(resp));
    return decodeResponse(back);
}

bool
AcceleratorDriver::shadowMatches(
    std::unordered_map<std::uint32_t, std::uint32_t> &regs,
    std::uint32_t block, float value)
{
    auto bits = std::bit_cast<std::uint32_t>(value);
    auto [it, inserted] = regs.try_emplace(block, bits);
    if (!inserted && it->second == bits) {
        ++shadow_stats_.skipped;
        return true;
    }
    it->second = bits;
    cfg_dirty_ = true;
    ++shadow_epoch_;
    return false;
}

bool
AcceleratorDriver::stagedProbe(
    const std::unordered_map<std::uint32_t, std::uint32_t> &regs,
    std::unordered_map<std::uint32_t, std::uint32_t> &staged,
    std::uint32_t block, float value)
{
    auto bits = std::bit_cast<std::uint32_t>(value);
    if (auto it = staged.find(block); it != staged.end()) {
        if (it->second == bits)
            return true;
        it->second = bits;
        return false;
    }
    if (auto it = regs.find(block);
        it != regs.end() && it->second == bits)
        return true;
    staged.emplace(block, bits);
    return false;
}

void
AcceleratorDriver::resetShadow()
{
    std::lock_guard<std::mutex> lk(shadow_mu_);
    conn_shadow_.clear();
    ic_shadow_.clear();
    gain_shadow_.clear();
    dac_shadow_.clear();
    lut_shadow_.clear();
    have_timeout_ = false;
    timeout_shadow_ = 0;
    cfg_dirty_ = true;
    ++shadow_epoch_;
}

void
AcceleratorDriver::beginStaging(StagedConfig &buf)
{
    std::lock_guard<std::mutex> lk(shadow_mu_);
    fatalIf(staging_ != nullptr,
            "beginStaging: a staging session is already active");
    buf.cmds_.clear();
    buf.wants_commit_ = false;
    buf.epoch_ = shadow_epoch_;
    staging_ = &buf;
    staging_tid_ = std::this_thread::get_id();
    staging_cleared_ = false;
    staged_conns_.clear();
    staged_ic_.clear();
    staged_gain_.clear();
    staged_dac_.clear();
    staged_lut_.clear();
    staged_have_timeout_ = false;
    staged_timeout_ = 0;
}

void
AcceleratorDriver::endStaging()
{
    std::lock_guard<std::mutex> lk(shadow_mu_);
    staging_ = nullptr;
}

void
AcceleratorDriver::applyToShadowLocked(const Command &cmd)
{
    switch (cmd.op) {
      case Opcode::SetConn:
        conn_shadow_.insert(
            connKey(PortRef{BlockId{cmd.block}, cmd.port},
                    PortRef{BlockId{cmd.block2}, cmd.port2}));
        break;
      case Opcode::SetIntInitial:
        ic_shadow_[cmd.block] =
            std::bit_cast<std::uint32_t>(cmd.value);
        break;
      case Opcode::SetMulGain:
        gain_shadow_[cmd.block] =
            std::bit_cast<std::uint32_t>(cmd.value);
        break;
      case Opcode::SetDacConstant:
        dac_shadow_[cmd.block] =
            std::bit_cast<std::uint32_t>(cmd.value);
        break;
      case Opcode::SetFunction:
        lut_shadow_[cmd.block] = cmd.table;
        break;
      case Opcode::SetTimeout:
        have_timeout_ = true;
        timeout_shadow_ = cmd.count;
        break;
      case Opcode::ClearConfig:
        conn_shadow_.clear();
        break;
      default:
        break;
    }
}

bool
AcceleratorDriver::flushStaged(StagedConfig &buf)
{
    {
        std::lock_guard<std::mutex> lk(shadow_mu_);
        // Another thread may be mid-staging its own buffer: fine —
        // if this flush ships anything, the epoch bump below stales
        // that buffer. Flushing from inside one's own session is a
        // programming error.
        fatalIf(stagingHere(),
                "flushStaged: staging session still active");
        if (buf.epoch_ != shadow_epoch_)
            return false; // stale delta — caller rebinds directly
    }
    for (const Command &cmd : buf.cmds_) {
        {
            std::lock_guard<std::mutex> lk(shadow_mu_);
            applyToShadowLocked(cmd);
            cfg_dirty_ = true;
        }
        transact(cmd);
    }
    if (buf.wants_commit_) {
        bool ship;
        {
            std::lock_guard<std::mutex> lk(shadow_mu_);
            ship = cfg_dirty_;
            if (ship)
                cfg_dirty_ = false;
            else
                ++shadow_stats_.skipped;
        }
        if (ship)
            transact(make(Opcode::CfgCommit));
    }
    if (!buf.cmds_.empty()) {
        std::lock_guard<std::mutex> lk(shadow_mu_);
        ++shadow_epoch_;
    }
    buf.cmds_.clear();
    buf.wants_commit_ = false;
    return true;
}

void
AcceleratorDriver::init()
{
    transact(make(Opcode::Init));
}

chip::ExecResult
AcceleratorDriver::execStart()
{
    Response resp = transact(make(Opcode::ExecStart));
    panicIf(resp.data.size() != 9, "execStart: bad response size");
    chip::ExecResult r;
    r.analog_time = getF32(resp.data, 0);
    std::uint8_t flags = resp.data[4];
    r.timed_out = flags & 1;
    r.steady = flags & 2;
    r.any_exception = flags & 4;
    r.sim_steps = getU32(resp.data, 5);
    return r;
}

void
AcceleratorDriver::execStop()
{
    transact(make(Opcode::ExecStop));
}

void
AcceleratorDriver::setConn(PortRef from, PortRef to)
{
    const std::uint64_t key = connKey(from, to);
    Command cmd = make(Opcode::SetConn);
    cmd.block = static_cast<std::uint16_t>(from.block.v);
    cmd.port = static_cast<std::uint8_t>(from.port);
    cmd.block2 = static_cast<std::uint16_t>(to.block.v);
    cmd.port2 = static_cast<std::uint8_t>(to.port);
    {
        std::lock_guard<std::mutex> lk(shadow_mu_);
        if (stagingHere()) {
            bool present =
                staged_conns_.count(key) != 0 ||
                (!staging_cleared_ && conn_shadow_.count(key) != 0);
            if (present)
                return;
            staged_conns_.insert(key);
            staging_->cmds_.push_back(cmd);
            return;
        }
        if (!conn_shadow_.insert(key).second) {
            ++shadow_stats_.skipped;
            return;
        }
        cfg_dirty_ = true;
        ++shadow_epoch_;
    }
    transact(cmd);
}

void
AcceleratorDriver::setIntInitial(BlockId integrator, double value)
{
    Command cmd = make(Opcode::SetIntInitial);
    cmd.block = static_cast<std::uint16_t>(integrator.v);
    cmd.value = static_cast<float>(value);
    {
        std::lock_guard<std::mutex> lk(shadow_mu_);
        if (stagingHere()) {
            if (!stagedProbe(ic_shadow_, staged_ic_, cmd.block,
                             cmd.value))
                staging_->cmds_.push_back(cmd);
            return;
        }
        if (shadowMatches(ic_shadow_, cmd.block, cmd.value))
            return;
    }
    transact(cmd);
}

void
AcceleratorDriver::setMulGain(BlockId multiplier, double gain)
{
    Command cmd = make(Opcode::SetMulGain);
    cmd.block = static_cast<std::uint16_t>(multiplier.v);
    cmd.value = static_cast<float>(gain);
    {
        std::lock_guard<std::mutex> lk(shadow_mu_);
        if (stagingHere()) {
            if (!stagedProbe(gain_shadow_, staged_gain_, cmd.block,
                             cmd.value))
                staging_->cmds_.push_back(cmd);
            return;
        }
        if (shadowMatches(gain_shadow_, cmd.block, cmd.value))
            return;
    }
    transact(cmd);
}

void
AcceleratorDriver::setFunction(BlockId lut,
                               const std::function<double(double)> &fn)
{
    fatalIf(!fn, "setFunction: empty function");
    const auto &spec = chip_.config().spec;
    Command cmd = make(Opcode::SetFunction);
    cmd.block = static_cast<std::uint16_t>(lut.v);
    cmd.table.resize(spec.lut_depth);
    for (std::size_t i = 0; i < cmd.table.size(); ++i) {
        double x =
            -1.0 + 2.0 * static_cast<double>(i) /
                       static_cast<double>(cmd.table.size() - 1);
        cmd.table[i] = static_cast<std::uint8_t>(
            circuit::quantizeCode(fn(x), spec.lut_bits));
    }
    {
        std::lock_guard<std::mutex> lk(shadow_mu_);
        if (stagingHere()) {
            if (auto it = staged_lut_.find(cmd.block);
                it != staged_lut_.end()) {
                if (it->second == cmd.table)
                    return;
                it->second = cmd.table;
            } else {
                auto sh = lut_shadow_.find(cmd.block);
                if (sh != lut_shadow_.end() &&
                    sh->second == cmd.table)
                    return;
                staged_lut_.emplace(cmd.block, cmd.table);
            }
            staging_->cmds_.push_back(cmd);
            return;
        }
        auto [it, inserted] =
            lut_shadow_.try_emplace(cmd.block, cmd.table);
        if (!inserted && it->second == cmd.table) {
            ++shadow_stats_.skipped;
            return;
        }
        it->second = cmd.table;
        cfg_dirty_ = true;
        ++shadow_epoch_;
    }
    transact(cmd);
}

void
AcceleratorDriver::setDacConstant(BlockId dac, double value)
{
    Command cmd = make(Opcode::SetDacConstant);
    cmd.block = static_cast<std::uint16_t>(dac.v);
    cmd.value = static_cast<float>(value);
    {
        std::lock_guard<std::mutex> lk(shadow_mu_);
        if (stagingHere()) {
            if (!stagedProbe(dac_shadow_, staged_dac_, cmd.block,
                             cmd.value))
                staging_->cmds_.push_back(cmd);
            return;
        }
        if (shadowMatches(dac_shadow_, cmd.block, cmd.value))
            return;
    }
    transact(cmd);
}

void
AcceleratorDriver::setTimeout(std::uint32_t ctrl_clock_cycles)
{
    Command cmd = make(Opcode::SetTimeout);
    cmd.count = ctrl_clock_cycles;
    {
        std::lock_guard<std::mutex> lk(shadow_mu_);
        if (stagingHere()) {
            bool known = staged_have_timeout_
                             ? staged_timeout_ == ctrl_clock_cycles
                             : have_timeout_ &&
                                   timeout_shadow_ ==
                                       ctrl_clock_cycles;
            if (known)
                return;
            staged_have_timeout_ = true;
            staged_timeout_ = ctrl_clock_cycles;
            staging_->cmds_.push_back(cmd);
            return;
        }
        if (have_timeout_ && timeout_shadow_ == ctrl_clock_cycles) {
            ++shadow_stats_.skipped;
            return;
        }
        have_timeout_ = true;
        timeout_shadow_ = ctrl_clock_cycles;
        cfg_dirty_ = true;
        ++shadow_epoch_;
    }
    transact(cmd);
}

void
AcceleratorDriver::cfgCommit()
{
    {
        std::lock_guard<std::mutex> lk(shadow_mu_);
        if (stagingHere()) {
            // Deferred: whether a commit actually ships is decided
            // against the live dirty flag at flushStaged() time.
            staging_->wants_commit_ = true;
            return;
        }
        // Nothing changed since the last commit: the latched device
        // configuration is already current, so skip the (expensive)
        // re-latch round trip entirely.
        if (!cfg_dirty_) {
            ++shadow_stats_.skipped;
            return;
        }
        cfg_dirty_ = false;
    }
    transact(make(Opcode::CfgCommit));
}

void
AcceleratorDriver::clearConfig()
{
    Command cmd = make(Opcode::ClearConfig);
    {
        std::lock_guard<std::mutex> lk(shadow_mu_);
        if (stagingHere()) {
            staging_->cmds_.push_back(cmd);
            staging_cleared_ = true;
            staged_conns_.clear();
            return;
        }
        conn_shadow_.clear();
        cfg_dirty_ = true;
        ++shadow_epoch_;
    }
    transact(cmd);
}

void
AcceleratorDriver::setAnaInputEn(BlockId ext_in,
                                 std::function<double(double)> stimulus)
{
    // Physical hookup first, then the protocol command enabling it.
    chip_.setAnaInputEn(ext_in, std::move(stimulus));
    Command cmd = make(Opcode::SetAnaInputEn);
    cmd.block = static_cast<std::uint16_t>(ext_in.v);
    cmd.byte = 1;
    transact(cmd);
}

void
AcceleratorDriver::writeParallel(std::uint8_t data)
{
    Command cmd = make(Opcode::WriteParallel);
    cmd.byte = data;
    transact(cmd);
}

std::vector<std::uint8_t>
AcceleratorDriver::readSerial()
{
    return transact(make(Opcode::ReadSerial)).data;
}

double
AcceleratorDriver::analogAvg(BlockId adc, std::size_t samples)
{
    Command cmd = make(Opcode::AnalogAvg);
    cmd.block = static_cast<std::uint16_t>(adc.v);
    cmd.count = static_cast<std::uint32_t>(samples);
    Response resp = transact(cmd);
    panicIf(resp.data.size() != 4, "analogAvg: bad response size");
    return getF32(resp.data, 0);
}

std::vector<std::uint8_t>
AcceleratorDriver::readExp()
{
    return transact(make(Opcode::ReadExp)).data;
}

} // namespace aa::isa
