/**
 * @file
 * Host-side driver for the analog accelerator.
 *
 * Exposes the Table I instructions as typed calls. Every call is
 * genuinely round-tripped: encoded to a wire frame, shipped over the
 * modelled SPI link, decoded by the device endpoint, executed on the
 * chip, and the response decoded back — so tests exercise the whole
 * host/accelerator protocol, and the link statistics price the
 * configuration traffic.
 *
 * The driver keeps a shadow copy of every configuration register it
 * has shipped. A set* call whose value matches the shadow is a no-op
 * (nothing framed, nothing on the wire), and cfgCommit is suppressed
 * when no register changed since the last commit — so repeated
 * configuration of the same program costs only its delta, and
 * configBytes() prices the real configuration traffic.
 */

#ifndef AA_ISA_DRIVER_HH
#define AA_ISA_DRIVER_HH

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "aa/chip/chip.hh"
#include "aa/isa/command.hh"
#include "aa/isa/spi.hh"

namespace aa::isa {

using chip::BlockId;
using chip::PortRef;

/** Device-side command dispatcher (the chip's digital front end). */
class DeviceEndpoint
{
  public:
    explicit DeviceEndpoint(chip::Chip &chip) : chip_(chip) {}

    /** Execute one decoded command against the chip. */
    Response execute(const Command &cmd);

  private:
    chip::Chip &chip_;
};

/** Shipped-vs-suppressed counters of the shadow register file. */
struct ShadowStats {
    std::size_t shipped = 0; ///< config commands that hit the wire
    std::size_t skipped = 0; ///< suppressed as already-programmed
};

/** Host-side typed API over the SPI link. */
class AcceleratorDriver
{
  public:
    explicit AcceleratorDriver(chip::Chip &chip);

    // --- control --------------------------------------------------
    void init();
    chip::ExecResult execStart();
    void execStop();

    // --- configuration ---------------------------------------------
    void setConn(PortRef from, PortRef to);
    void setIntInitial(BlockId integrator, double value);
    void setMulGain(BlockId multiplier, double gain);
    void setFunction(BlockId lut,
                     const std::function<double(double)> &fn);
    void setDacConstant(BlockId dac, double value);
    void setTimeout(std::uint32_t ctrl_clock_cycles);
    void cfgCommit();
    void clearConfig();

    // --- data -----------------------------------------------------
    void setAnaInputEn(BlockId ext_in,
                       std::function<double(double)> stimulus);
    void writeParallel(std::uint8_t data);
    std::vector<std::uint8_t> readSerial();
    double analogAvg(BlockId adc, std::size_t samples);

    // --- exceptions -------------------------------------------------
    std::vector<std::uint8_t> readExp();

    /** The chip (resource discovery stays host-visible). */
    chip::Chip &chip() { return chip_; }
    const chip::Chip &chip() const { return chip_; }

    SpiLink &link() { return link_; }
    const std::vector<Command> &trace() const { return trace_; }

    /** Downstream bytes of configuration-class commands actually
     *  shipped (SetConn..CfgCommit plus ClearConfig) — the delta
     *  traffic once the shadow registers suppress rewrites. */
    std::size_t configBytes() const { return config_bytes_; }
    const ShadowStats &shadowStats() const { return shadow_stats_; }

    /** Forget everything the shadow knows, so the next configuration
     *  ships in full (benchmarking the cold path; the device state is
     *  untouched). */
    void resetShadow();

  private:
    Response transact(Command cmd);

    /** True when (block -> f32 bits of value) is already programmed;
     *  records the value otherwise. */
    bool shadowMatches(
        std::unordered_map<std::uint32_t, std::uint32_t> &regs,
        std::uint32_t block, float value);

    chip::Chip &chip_;
    DeviceEndpoint endpoint;
    SpiLink link_;
    std::vector<Command> trace_;

    // Shadow register file. Values survive ClearConfig (the device
    // drops only connections); everything resets with resetShadow().
    std::unordered_set<std::uint64_t> conn_shadow_;
    std::unordered_map<std::uint32_t, std::uint32_t> ic_shadow_;
    std::unordered_map<std::uint32_t, std::uint32_t> gain_shadow_;
    std::unordered_map<std::uint32_t, std::uint32_t> dac_shadow_;
    std::unordered_map<std::uint32_t, std::vector<std::uint8_t>>
        lut_shadow_;
    bool have_timeout_ = false;
    std::uint32_t timeout_shadow_ = 0;
    bool cfg_dirty_ = true; ///< something to latch at cfgCommit
    std::size_t config_bytes_ = 0;
    ShadowStats shadow_stats_;
};

} // namespace aa::isa

#endif // AA_ISA_DRIVER_HH
