/**
 * @file
 * Host-side driver for the analog accelerator.
 *
 * Exposes the Table I instructions as typed calls. Every call is
 * genuinely round-tripped: encoded to a wire frame, shipped over the
 * modelled SPI link, decoded by the device endpoint, executed on the
 * chip, and the response decoded back — so tests exercise the whole
 * host/accelerator protocol, and the link statistics price the
 * configuration traffic.
 *
 * The driver keeps a shadow copy of every configuration register it
 * has shipped. A set* call whose value matches the shadow is a no-op
 * (nothing framed, nothing on the wire), and cfgCommit is suppressed
 * when no register changed since the last commit — so repeated
 * configuration of the same program costs only its delta, and
 * configBytes() prices the real configuration traffic.
 */

#ifndef AA_ISA_DRIVER_HH
#define AA_ISA_DRIVER_HH

#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "aa/chip/chip.hh"
#include "aa/isa/command.hh"
#include "aa/isa/spi.hh"

namespace aa::isa {

using chip::BlockId;
using chip::PortRef;

/** Device-side command dispatcher (the chip's digital front end). */
class DeviceEndpoint
{
  public:
    explicit DeviceEndpoint(chip::Chip &chip) : chip_(chip) {}

    /** Execute one decoded command against the chip. */
    Response execute(const Command &cmd);

  private:
    chip::Chip &chip_;
};

/** Shipped-vs-suppressed counters of the shadow register file. */
struct ShadowStats {
    std::size_t shipped = 0; ///< config commands that hit the wire
    std::size_t skipped = 0; ///< suppressed as already-programmed
};

/**
 * A prepared-write buffer: configuration commands diffed against the
 * shadow register file without touching the wire.
 *
 * Between beginStaging/endStaging the driver's set* calls become
 * read-only probes — commands whose value differs from the shadow are
 * recorded here instead of shipped, and the shadow itself is never
 * mutated. flushStaged() later replays the recorded delta in one
 * burst (ending in the usual single cfgCommit). The buffer carries
 * the shadow epoch it was diffed against: if any direct configuration
 * happened in between, the delta is stale and flushStaged() refuses,
 * letting the caller rebind against the live shadow instead.
 */
class StagedConfig
{
  public:
    /** Anything to ship (delta commands or a pending commit)? */
    bool pending() const { return !cmds_.empty() || wants_commit_; }
    const std::vector<Command> &commands() const { return cmds_; }

  private:
    friend class AcceleratorDriver;
    std::vector<Command> cmds_;
    std::uint64_t epoch_ = 0;
    bool wants_commit_ = false;
};

/** Host-side typed API over the SPI link. */
class AcceleratorDriver
{
  public:
    explicit AcceleratorDriver(chip::Chip &chip);

    // --- control --------------------------------------------------
    void init();
    chip::ExecResult execStart();
    void execStop();

    // --- configuration ---------------------------------------------
    void setConn(PortRef from, PortRef to);
    void setIntInitial(BlockId integrator, double value);
    void setMulGain(BlockId multiplier, double gain);
    void setFunction(BlockId lut,
                     const std::function<double(double)> &fn);
    void setDacConstant(BlockId dac, double value);
    void setTimeout(std::uint32_t ctrl_clock_cycles);
    void cfgCommit();
    void clearConfig();

    // --- data -----------------------------------------------------
    void setAnaInputEn(BlockId ext_in,
                       std::function<double(double)> stimulus);
    void writeParallel(std::uint8_t data);
    std::vector<std::uint8_t> readSerial();
    double analogAvg(BlockId adc, std::size_t samples);

    // --- exceptions -------------------------------------------------
    std::vector<std::uint8_t> readExp();

    /** The chip (resource discovery stays host-visible). */
    chip::Chip &chip() { return chip_; }
    const chip::Chip &chip() const { return chip_; }

    SpiLink &link() { return link_; }
    const std::vector<Command> &trace() const { return trace_; }

    /** Downstream bytes of configuration-class commands actually
     *  shipped (SetConn..CfgCommit plus ClearConfig) — the delta
     *  traffic once the shadow registers suppress rewrites. */
    std::size_t configBytes() const { return config_bytes_; }
    const ShadowStats &shadowStats() const { return shadow_stats_; }

    /** Forget everything the shadow knows, so the next configuration
     *  ships in full (benchmarking the cold path; the device state is
     *  untouched). */
    void resetShadow();

    // --- staged configuration -------------------------------------
    /**
     * Enter staging mode: until endStaging(), configuration set*
     * calls **from the staging thread** diff against the shadow
     * read-only and record their delta into `buf` instead of shipping
     * it. Safe to run from a thread other than the one executing on
     * the die — the shadow is only read (under lock), never written,
     * and another thread's direct set* calls still ship normally
     * (each direct mutation bumps the shadow epoch, so the staged
     * delta simply goes stale). Staging must not nest.
     */
    void beginStaging(StagedConfig &buf);
    void endStaging();

    /**
     * Ship a staged delta: replay the recorded commands over the wire
     * (mirroring them into the shadow) and issue the deferred
     * cfgCommit. Returns false without touching the wire when the
     * shadow changed since the delta was staged — the caller must
     * then re-apply its configuration directly.
     */
    bool flushStaged(StagedConfig &buf);

  private:
    Response transact(Command cmd);

    /** True when (block -> f32 bits of value) is already programmed;
     *  records the value otherwise. Caller holds shadow_mu_. */
    bool shadowMatches(
        std::unordered_map<std::uint32_t, std::uint32_t> &regs,
        std::uint32_t block, float value);

    /** Staged probe of a float register: consult this session's
     *  staged writes first, then the live shadow, read-only. Returns
     *  true when the value is already (or already staged to be)
     *  programmed; records the staged value otherwise. Caller holds
     *  shadow_mu_ and staging is active. */
    bool stagedProbe(
        const std::unordered_map<std::uint32_t, std::uint32_t> &regs,
        std::unordered_map<std::uint32_t, std::uint32_t> &staged,
        std::uint32_t block, float value);

    /** Mirror one staged command into the shadow (flush path). */
    void applyToShadowLocked(const Command &cmd);

    /** Is the calling thread the owner of the active staging
     *  session? Caller holds shadow_mu_. Other threads' config
     *  writes bypass the staging redirect entirely. */
    bool stagingHere() const
    {
        return staging_ != nullptr &&
               staging_tid_ == std::this_thread::get_id();
    }

    chip::Chip &chip_;
    DeviceEndpoint endpoint;
    SpiLink link_;
    std::vector<Command> trace_;

    // Shadow register file. Values survive ClearConfig (the device
    // drops only connections); everything resets with resetShadow().
    // Guarded by shadow_mu_ so an off-die staging thread can probe it
    // while the die's executor mutates it; the wire path (transact)
    // stays single-threaded per die.
    mutable std::mutex shadow_mu_;
    std::unordered_set<std::uint64_t> conn_shadow_;
    std::unordered_map<std::uint32_t, std::uint32_t> ic_shadow_;
    std::unordered_map<std::uint32_t, std::uint32_t> gain_shadow_;
    std::unordered_map<std::uint32_t, std::uint32_t> dac_shadow_;
    std::unordered_map<std::uint32_t, std::vector<std::uint8_t>>
        lut_shadow_;
    bool have_timeout_ = false;
    std::uint32_t timeout_shadow_ = 0;
    bool cfg_dirty_ = true; ///< something to latch at cfgCommit
    /** Bumped on every shadow mutation; staged deltas are valid only
     *  while the epoch they were diffed against is still current. */
    std::uint64_t shadow_epoch_ = 0;

    // Active staging session (null when not staging). The staged_*
    // mirrors track what the session has recorded so repeated staged
    // writes diff against their own pending values, exactly like the
    // serial path diffs against the live shadow.
    StagedConfig *staging_ = nullptr;
    std::thread::id staging_tid_;  ///< thread that began the session
    bool staging_cleared_ = false; ///< session staged a ClearConfig
    std::unordered_set<std::uint64_t> staged_conns_;
    std::unordered_map<std::uint32_t, std::uint32_t> staged_ic_;
    std::unordered_map<std::uint32_t, std::uint32_t> staged_gain_;
    std::unordered_map<std::uint32_t, std::uint32_t> staged_dac_;
    std::unordered_map<std::uint32_t, std::vector<std::uint8_t>>
        staged_lut_;
    bool staged_have_timeout_ = false;
    std::uint32_t staged_timeout_ = 0;

    std::size_t config_bytes_ = 0;
    ShadowStats shadow_stats_;
};

} // namespace aa::isa

#endif // AA_ISA_DRIVER_HH
