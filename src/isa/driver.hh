/**
 * @file
 * Host-side driver for the analog accelerator.
 *
 * Exposes the Table I instructions as typed calls. Every call is
 * genuinely round-tripped: encoded to a wire frame, shipped over the
 * modelled SPI link, decoded by the device endpoint, executed on the
 * chip, and the response decoded back — so tests exercise the whole
 * host/accelerator protocol, and the link statistics price the
 * configuration traffic.
 */

#ifndef AA_ISA_DRIVER_HH
#define AA_ISA_DRIVER_HH

#include <functional>

#include "aa/chip/chip.hh"
#include "aa/isa/command.hh"
#include "aa/isa/spi.hh"

namespace aa::isa {

using chip::BlockId;
using chip::PortRef;

/** Device-side command dispatcher (the chip's digital front end). */
class DeviceEndpoint
{
  public:
    explicit DeviceEndpoint(chip::Chip &chip) : chip_(chip) {}

    /** Execute one decoded command against the chip. */
    Response execute(const Command &cmd);

  private:
    chip::Chip &chip_;
};

/** Host-side typed API over the SPI link. */
class AcceleratorDriver
{
  public:
    explicit AcceleratorDriver(chip::Chip &chip);

    // --- control --------------------------------------------------
    void init();
    chip::ExecResult execStart();
    void execStop();

    // --- configuration ---------------------------------------------
    void setConn(PortRef from, PortRef to);
    void setIntInitial(BlockId integrator, double value);
    void setMulGain(BlockId multiplier, double gain);
    void setFunction(BlockId lut,
                     const std::function<double(double)> &fn);
    void setDacConstant(BlockId dac, double value);
    void setTimeout(std::uint32_t ctrl_clock_cycles);
    void cfgCommit();
    void clearConfig();

    // --- data -----------------------------------------------------
    void setAnaInputEn(BlockId ext_in,
                       std::function<double(double)> stimulus);
    void writeParallel(std::uint8_t data);
    std::vector<std::uint8_t> readSerial();
    double analogAvg(BlockId adc, std::size_t samples);

    // --- exceptions -------------------------------------------------
    std::vector<std::uint8_t> readExp();

    /** The chip (resource discovery stays host-visible). */
    chip::Chip &chip() { return chip_; }
    const chip::Chip &chip() const { return chip_; }

    SpiLink &link() { return link_; }
    const std::vector<Command> &trace() const { return trace_; }

  private:
    Response transact(Command cmd);

    chip::Chip &chip_;
    DeviceEndpoint endpoint;
    SpiLink link_;
    std::vector<Command> trace_;
};

} // namespace aa::isa

#endif // AA_ISA_DRIVER_HH
