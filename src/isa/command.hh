/**
 * @file
 * The analog accelerator instruction set (paper Table I) as wire
 * commands.
 *
 * The digital host talks to the accelerator over a byte-oriented SPI
 * link; every instruction is one framed command, every reply one
 * framed response. Frames: [opcode:1][length:2 LE][payload...].
 * Floats travel as IEEE-754 binary32. LUT functions travel as their
 * quantized sample codes — function pointers cannot cross a wire.
 */

#ifndef AA_ISA_COMMAND_HH
#define AA_ISA_COMMAND_HH

#include <cstdint>
#include <vector>

namespace aa::isa {

/** Table I instruction opcodes (plus ClearConfig housekeeping). */
enum class Opcode : std::uint8_t {
    Init = 0x01,          ///< control: calibrate all function units
    SetConn = 0x02,       ///< config: crossbar connection
    SetIntInitial = 0x03, ///< config: integrator initial condition
    SetMulGain = 0x04,    ///< config: multiplier gain
    SetFunction = 0x05,   ///< config: LUT contents (sample codes)
    SetDacConstant = 0x06, ///< config: DAC bias level
    SetTimeout = 0x07,    ///< config: computation time budget
    CfgCommit = 0x08,     ///< config: latch configuration registers
    ExecStart = 0x09,     ///< control: release integrators
    ExecStop = 0x0a,      ///< control: hold integrators
    SetAnaInputEn = 0x0b, ///< data in: open an analog input channel
    WriteParallel = 0x0c, ///< data in: 8-bit digital input bus
    ReadSerial = 0x0d,    ///< data out: all ADC codes
    AnalogAvg = 0x0e,     ///< data out: averaged ADC read
    ReadExp = 0x0f,       ///< exception: overflow latch vector
    /** Extension: drop all crossbar connections before remapping a
     *  new problem (the paper reconfigures between problems but does
     *  not name the instruction). */
    ClearConfig = 0x10
};

const char *opcodeName(Opcode op);

/** A decoded command: opcode plus typed fields (unused ones zero). */
struct Command {
    Opcode op = Opcode::Init;
    std::uint16_t block = 0;  ///< primary unit index
    std::uint8_t port = 0;    ///< primary port
    std::uint16_t block2 = 0; ///< secondary unit (SetConn dst)
    std::uint8_t port2 = 0;   ///< secondary port
    float value = 0.0f;       ///< float operand
    std::uint32_t count = 0;  ///< cycles / sample count
    std::uint8_t byte = 0;    ///< WriteParallel data / enable flag
    std::vector<std::uint8_t> table; ///< LUT sample codes

    bool operator==(const Command &o) const = default;
};

/** Device reply. Status 0 = OK. */
struct Response {
    std::uint8_t status = 0;
    std::vector<std::uint8_t> data;

    bool operator==(const Response &o) const = default;
};

/** Serialize a command into one SPI frame. */
std::vector<std::uint8_t> encodeCommand(const Command &cmd);

/** Parse one SPI frame back into a command; fatal() on bad frames. */
Command decodeCommand(const std::vector<std::uint8_t> &frame);

/** Serialize / parse a response frame: [status:1][len:2 LE][data]. */
std::vector<std::uint8_t> encodeResponse(const Response &resp);
Response decodeResponse(const std::vector<std::uint8_t> &frame);

} // namespace aa::isa

#endif // AA_ISA_COMMAND_HH
