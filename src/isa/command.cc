#include "aa/isa/command.hh"

#include <bit>

#include "aa/common/logging.hh"

namespace aa::isa {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Init: return "init";
      case Opcode::SetConn: return "setConn";
      case Opcode::SetIntInitial: return "setIntInitial";
      case Opcode::SetMulGain: return "setMulGain";
      case Opcode::SetFunction: return "setFunction";
      case Opcode::SetDacConstant: return "setDacConstant";
      case Opcode::SetTimeout: return "setTimeout";
      case Opcode::CfgCommit: return "cfgCommit";
      case Opcode::ExecStart: return "execStart";
      case Opcode::ExecStop: return "execStop";
      case Opcode::SetAnaInputEn: return "setAnaInputEn";
      case Opcode::WriteParallel: return "writeParallel";
      case Opcode::ReadSerial: return "readSerial";
      case Opcode::AnalogAvg: return "analogAvg";
      case Opcode::ReadExp: return "readExp";
      case Opcode::ClearConfig: return "clearConfig";
    }
    panic("opcodeName: bad enum");
}

namespace {

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(v & 0xff);
    out.push_back((v >> 8) & 0xff);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int k = 0; k < 4; ++k)
        out.push_back((v >> (8 * k)) & 0xff);
}

void
putF32(std::vector<std::uint8_t> &out, float v)
{
    putU32(out, std::bit_cast<std::uint32_t>(v));
}

/** Byte-stream reader with bounds checking. */
struct Reader {
    const std::vector<std::uint8_t> &buf;
    std::size_t pos = 0;

    std::uint8_t
    u8()
    {
        fatalIf(pos + 1 > buf.size(), "frame underrun");
        return buf[pos++];
    }

    std::uint16_t
    u16()
    {
        std::uint16_t lo = u8();
        return lo | (static_cast<std::uint16_t>(u8()) << 8);
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (int k = 0; k < 4; ++k)
            v |= static_cast<std::uint32_t>(u8()) << (8 * k);
        return v;
    }

    float
    f32()
    {
        return std::bit_cast<float>(u32());
    }
};

} // namespace

std::vector<std::uint8_t>
encodeCommand(const Command &cmd)
{
    std::vector<std::uint8_t> payload;
    switch (cmd.op) {
      case Opcode::Init:
      case Opcode::CfgCommit:
      case Opcode::ExecStart:
      case Opcode::ExecStop:
      case Opcode::ReadSerial:
      case Opcode::ReadExp:
      case Opcode::ClearConfig:
        break;
      case Opcode::SetConn:
        putU16(payload, cmd.block);
        payload.push_back(cmd.port);
        putU16(payload, cmd.block2);
        payload.push_back(cmd.port2);
        break;
      case Opcode::SetIntInitial:
      case Opcode::SetMulGain:
      case Opcode::SetDacConstant:
        putU16(payload, cmd.block);
        putF32(payload, cmd.value);
        break;
      case Opcode::SetFunction:
        putU16(payload, cmd.block);
        putU16(payload,
               static_cast<std::uint16_t>(cmd.table.size()));
        payload.insert(payload.end(), cmd.table.begin(),
                       cmd.table.end());
        break;
      case Opcode::SetTimeout:
        putU32(payload, cmd.count);
        break;
      case Opcode::SetAnaInputEn:
        putU16(payload, cmd.block);
        payload.push_back(cmd.byte);
        break;
      case Opcode::WriteParallel:
        payload.push_back(cmd.byte);
        break;
      case Opcode::AnalogAvg:
        putU16(payload, cmd.block);
        putU32(payload, cmd.count);
        break;
    }

    std::vector<std::uint8_t> frame;
    frame.push_back(static_cast<std::uint8_t>(cmd.op));
    putU16(frame, static_cast<std::uint16_t>(payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

Command
decodeCommand(const std::vector<std::uint8_t> &frame)
{
    fatalIf(frame.size() < 3, "decodeCommand: short frame");
    Reader r{frame};
    Command cmd;
    cmd.op = static_cast<Opcode>(r.u8());
    std::uint16_t len = r.u16();
    fatalIf(frame.size() != 3u + len,
            "decodeCommand: frame length mismatch");

    switch (cmd.op) {
      case Opcode::Init:
      case Opcode::CfgCommit:
      case Opcode::ExecStart:
      case Opcode::ExecStop:
      case Opcode::ReadSerial:
      case Opcode::ReadExp:
      case Opcode::ClearConfig:
        break;
      case Opcode::SetConn:
        cmd.block = r.u16();
        cmd.port = r.u8();
        cmd.block2 = r.u16();
        cmd.port2 = r.u8();
        break;
      case Opcode::SetIntInitial:
      case Opcode::SetMulGain:
      case Opcode::SetDacConstant:
        cmd.block = r.u16();
        cmd.value = r.f32();
        break;
      case Opcode::SetFunction: {
        cmd.block = r.u16();
        std::uint16_t n = r.u16();
        cmd.table.reserve(n);
        for (std::uint16_t i = 0; i < n; ++i)
            cmd.table.push_back(r.u8());
        break;
      }
      case Opcode::SetTimeout:
        cmd.count = r.u32();
        break;
      case Opcode::SetAnaInputEn:
        cmd.block = r.u16();
        cmd.byte = r.u8();
        break;
      case Opcode::WriteParallel:
        cmd.byte = r.u8();
        break;
      case Opcode::AnalogAvg:
        cmd.block = r.u16();
        cmd.count = r.u32();
        break;
    }
    fatalIf(r.pos != frame.size(),
            "decodeCommand: trailing bytes in frame");
    return cmd;
}

std::vector<std::uint8_t>
encodeResponse(const Response &resp)
{
    std::vector<std::uint8_t> frame;
    frame.push_back(resp.status);
    putU16(frame, static_cast<std::uint16_t>(resp.data.size()));
    frame.insert(frame.end(), resp.data.begin(), resp.data.end());
    return frame;
}

Response
decodeResponse(const std::vector<std::uint8_t> &frame)
{
    fatalIf(frame.size() < 3, "decodeResponse: short frame");
    Reader r{frame};
    Response resp;
    resp.status = r.u8();
    std::uint16_t len = r.u16();
    fatalIf(frame.size() != 3u + len,
            "decodeResponse: frame length mismatch");
    resp.data.assign(frame.begin() + 3, frame.end());
    return resp;
}

} // namespace aa::isa
