/**
 * @file
 * SPI-style transport between the digital host and the accelerator.
 *
 * The prototype receives its commands "over an interface implementing
 * an SPI protocol" (Section III-A). We model the link as a
 * synchronous byte pipe with accounting, so configuration cost
 * (bytes, transactions, wall time at a given clock) can be measured
 * and charged by the cost model.
 */

#ifndef AA_ISA_SPI_HH
#define AA_ISA_SPI_HH

#include <cstdint>
#include <vector>

namespace aa::isa {

/** Byte-pipe link with transfer accounting. */
class SpiLink
{
  public:
    explicit SpiLink(double clock_hz = 1e6) : clock_hz(clock_hz) {}

    /** Ship one frame host -> device; returns it (synchronous). */
    const std::vector<std::uint8_t> &
    hostToDevice(const std::vector<std::uint8_t> &frame)
    {
        bytes_down += frame.size();
        ++transactions;
        return frame;
    }

    /** Ship one frame device -> host. */
    const std::vector<std::uint8_t> &
    deviceToHost(const std::vector<std::uint8_t> &frame)
    {
        bytes_up += frame.size();
        return frame;
    }

    std::size_t bytesDown() const { return bytes_down; }
    std::size_t bytesUp() const { return bytes_up; }
    std::size_t transactionCount() const { return transactions; }

    /** Wall time the transfers took at 8 clocks per byte. */
    double
    transferSeconds() const
    {
        return 8.0 *
               static_cast<double>(bytes_down + bytes_up) / clock_hz;
    }

    void
    resetStats()
    {
        bytes_down = bytes_up = transactions = 0;
    }

  private:
    double clock_hz;
    std::size_t bytes_down = 0;
    std::size_t bytes_up = 0;
    std::size_t transactions = 0;
};

} // namespace aa::isa

#endif // AA_ISA_SPI_HH
